// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Exact ground truth for experiments and tests: maintains the full frequency
// vector (O(n) space — deliberately *not* a streaming algorithm) and answers
// every statistic the paper's algorithms approximate.

#ifndef WBS_STREAM_FREQUENCY_ORACLE_H_
#define WBS_STREAM_FREQUENCY_ORACLE_H_

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/updates.h"

namespace wbs::stream {

/// Exact frequency-vector tracker over universe [0, n).
class FrequencyOracle {
 public:
  explicit FrequencyOracle(uint64_t universe) : universe_(universe) {}

  /// Applies f[item] += delta.
  ///
  /// Update accounting invariant: total_updates() counts *effective* stream
  /// updates — every call with delta != 0 counts exactly once (including a
  /// cancelling turnstile delete, which is a real update even though it
  /// removes the coordinate), while a delta == 0 call is a no-op and does
  /// not count. AddStream obeys the same rule, so ingesting a stream
  /// element-by-element via Add() and in one shot via AddStream() always
  /// yields identical total_updates().
  void Add(uint64_t item, int64_t delta = 1) {
    if (delta == 0) return;
    auto it = freq_.find(item);
    if (it == freq_.end()) {
      freq_.emplace(item, delta);
    } else {
      it->second += delta;
      if (it->second == 0) freq_.erase(it);
    }
    total_updates_ += 1;
  }

  void AddStream(const ItemStream& s) {
    for (const auto& u : s) Add(u.item, 1);
  }
  void AddStream(const TurnstileStream& s) {
    for (const auto& u : s) Add(u.item, u.delta);
  }

  int64_t Frequency(uint64_t item) const {
    auto it = freq_.find(item);
    return it == freq_.end() ? 0 : it->second;
  }

  /// L1 = sum |f_i|.
  uint64_t L1() const {
    uint64_t s = 0;
    for (const auto& [k, v] : freq_) s += uint64_t(v < 0 ? -v : v);
    return s;
  }

  /// L0 = number of nonzero coordinates.
  uint64_t L0() const { return freq_.size(); }

  /// F_p = sum |f_i|^p (F_0 = L0, F_1 = L1).
  double Fp(double p) const {
    if (p == 0) return double(L0());
    double s = 0;
    for (const auto& [k, v] : freq_) {
      s += std::pow(std::abs(double(v)), p);
    }
    return s;
  }

  /// All items with f_i > threshold (strict, matching the eps-L1-HH
  /// definition f_i > eps * L1).
  std::vector<uint64_t> ItemsAbove(double threshold) const {
    std::vector<uint64_t> out;
    for (const auto& [k, v] : freq_) {
      if (double(v) > threshold) out.push_back(k);
    }
    return out;
  }

  /// <f, g> for another oracle over the same universe.
  int64_t InnerProduct(const FrequencyOracle& g) const {
    int64_t s = 0;
    const auto& a = freq_.size() <= g.freq_.size() ? freq_ : g.freq_;
    const auto& b = freq_.size() <= g.freq_.size() ? g.freq_ : freq_;
    for (const auto& [k, v] : a) {
      auto it = b.find(k);
      if (it != b.end()) s += v * it->second;
    }
    return s;
  }

  uint64_t universe() const { return universe_; }
  uint64_t total_updates() const { return total_updates_; }
  const std::unordered_map<uint64_t, int64_t>& frequencies() const {
    return freq_;
  }

 private:
  uint64_t universe_;
  uint64_t total_updates_ = 0;
  std::unordered_map<uint64_t, int64_t> freq_;
};

}  // namespace wbs::stream

#endif  // WBS_STREAM_FREQUENCY_ORACLE_H_
