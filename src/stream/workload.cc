// Copyright (c) wbstream authors. Licensed under the MIT license.

#include "stream/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wbs::stream {

ItemStream ZipfStream(uint64_t universe, uint64_t m, double alpha,
                      wbs::RandomTape* tape) {
  assert(universe > 0);
  // Build the CDF over a truncated support (ranks beyond ~64k contribute
  // negligibly for alpha >= 1; for smaller alpha we still cap for speed).
  const uint64_t support = std::min<uint64_t>(universe, 1 << 16);
  std::vector<double> cdf(support);
  double z = 0;
  for (uint64_t r = 0; r < support; ++r) {
    z += 1.0 / std::pow(double(r + 1), alpha);
    cdf[r] = z;
  }
  ItemStream s;
  s.reserve(m);
  for (uint64_t t = 0; t < m; ++t) {
    double x = tape->UniformDouble() * z;
    auto it = std::lower_bound(cdf.begin(), cdf.end(), x);
    uint64_t rank = uint64_t(it - cdf.begin());
    if (rank >= support) rank = support - 1;
    // Spread ranks over the universe with a fixed affine mix so heavy items
    // are not all clustered at the start of the universe.
    uint64_t item = (rank * 2654435761ULL + 12345) % universe;
    s.push_back({item});
  }
  return s;
}

ItemStream UniformStream(uint64_t universe, uint64_t m,
                         wbs::RandomTape* tape) {
  ItemStream s;
  s.reserve(m);
  for (uint64_t t = 0; t < m; ++t) {
    s.push_back({tape->UniformInt(universe)});
  }
  return s;
}

ItemStream PlantedHeavyHitterStream(uint64_t universe, uint64_t m, int k,
                                    double heavy_fraction,
                                    wbs::RandomTape* tape,
                                    std::vector<uint64_t>* planted) {
  assert(k >= 0 && heavy_fraction > 0);
  assert(double(k) * heavy_fraction <= 1.0);
  planted->clear();
  ItemStream s;
  s.reserve(m);
  const uint64_t per_heavy = uint64_t(std::ceil(heavy_fraction * double(m)));
  for (int i = 0; i < k; ++i) {
    // Distinct planted ids, deterministic given the tape.
    uint64_t id;
    do {
      id = tape->UniformInt(universe);
    } while (std::find(planted->begin(), planted->end(), id) !=
             planted->end());
    planted->push_back(id);
    for (uint64_t j = 0; j < per_heavy && s.size() < m; ++j) {
      s.push_back({id});
    }
  }
  while (s.size() < m) {
    uint64_t id = tape->UniformInt(universe);
    // Noise must not accidentally hit a planted id (keeps ground truth exact).
    if (std::find(planted->begin(), planted->end(), id) != planted->end()) {
      continue;
    }
    s.push_back({id});
  }
  // Fisher-Yates shuffle so heavy items are interleaved.
  for (size_t i = s.size(); i > 1; --i) {
    size_t j = tape->UniformInt(i);
    std::swap(s[i - 1], s[j]);
  }
  return s;
}

TurnstileStream InsertDeleteChurnStream(uint64_t universe, uint64_t live,
                                        uint64_t churn,
                                        wbs::RandomTape* tape) {
  assert(live + churn <= universe);
  TurnstileStream s;
  s.reserve(live + 2 * churn);
  // Live items occupy [0, live) shuffled through an affine permutation so the
  // nonzero support is scattered.
  auto scatter = [universe](uint64_t i) {
    return (i * 0x9e3779b97f4a7c15ULL) % universe;
  };
  for (uint64_t i = 0; i < live; ++i) {
    s.push_back({scatter(i), int64_t(1 + tape->UniformInt(5))});
  }
  for (uint64_t i = 0; i < churn; ++i) {
    uint64_t item = scatter(live + i);
    int64_t amt = int64_t(1 + tape->UniformInt(9));
    s.push_back({item, amt});
    s.push_back({item, -amt});
  }
  // Shuffle while keeping each delete after its insert: swap only inserts.
  // (A full shuffle could drive a coordinate negative before its insert —
  // legal in turnstile but we keep ||f||_inf small and final support exact.)
  return s;
}

std::string PeriodicString(size_t n, size_t p, int alphabet,
                           wbs::RandomTape* tape) {
  assert(p >= 1 && p <= n);
  std::string period(p, 'a');
  for (size_t i = 0; i < p; ++i) {
    period[i] = char('a' + tape->UniformInt(uint64_t(alphabet)));
  }
  std::string out;
  out.reserve(n);
  while (out.size() + p <= n) out += period;
  out += period.substr(0, n - out.size());
  return out;
}

std::string TextWithPlantedOccurrences(size_t n, const std::string& pattern,
                                       const std::vector<size_t>& positions,
                                       int alphabet, wbs::RandomTape* tape) {
  std::string text(n, 'a');
  for (size_t i = 0; i < n; ++i) {
    text[i] = char('a' + tape->UniformInt(uint64_t(alphabet)));
  }
  for (size_t pos : positions) {
    assert(pos + pattern.size() <= n);
    for (size_t i = 0; i < pattern.size(); ++i) text[pos + i] = pattern[i];
  }
  return text;
}

}  // namespace wbs::stream
