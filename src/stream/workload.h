// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Synthetic workload generators used by tests, examples and the experiment
// harness: Zipfian traffic, planted heavy hitters, uniform noise, periodic
// strings, and turnstile insert/delete churn. All generators are seeded and
// deterministic.

#ifndef WBS_STREAM_WORKLOAD_H_
#define WBS_STREAM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "stream/updates.h"

namespace wbs::stream {

/// Zipf(alpha) item stream of length m over [0, universe).
ItemStream ZipfStream(uint64_t universe, uint64_t m, double alpha,
                      wbs::RandomTape* tape);

/// Uniform item stream of length m over [0, universe).
ItemStream UniformStream(uint64_t universe, uint64_t m, wbs::RandomTape* tape);

/// Plants `k` heavy hitters each with frequency >= ceil(heavy_fraction * m),
/// fills the rest with uniform noise over the remaining universe, and
/// shuffles. Returns the planted item ids through *planted.
ItemStream PlantedHeavyHitterStream(uint64_t universe, uint64_t m, int k,
                                    double heavy_fraction,
                                    wbs::RandomTape* tape,
                                    std::vector<uint64_t>* planted);

/// Turnstile stream: inserts `live` distinct items, then performs
/// `churn` insert/delete pairs of throwaway items (net zero), leaving
/// exactly `live` nonzero coordinates. Exercises Algorithm 5's turnstile
/// guarantee: deletions must truly cancel.
TurnstileStream InsertDeleteChurnStream(uint64_t universe, uint64_t live,
                                        uint64_t churn, wbs::RandomTape* tape);

/// A string of length n with exact period p over the given alphabet bits
/// (the pattern-matching workloads of Section 2.6).
std::string PeriodicString(size_t n, size_t p, int alphabet,
                           wbs::RandomTape* tape);

/// Text of length n containing the pattern at each position in `positions`
/// (positions must be >= pattern.size() apart); other characters random.
std::string TextWithPlantedOccurrences(size_t n, const std::string& pattern,
                                       const std::vector<size_t>& positions,
                                       int alphabet, wbs::RandomTape* tape);

}  // namespace wbs::stream

#endif  // WBS_STREAM_WORKLOAD_H_
