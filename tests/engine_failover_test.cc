// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Shard failure as a first-class scenario (PR 7): crash injection,
// heartbeat supervision, checkpoints, and MoveShard-based failover.
//
//   * detection + recovery: an injected crash of a loopback shard is
//     noticed by heartbeat timeout (kSuspect -> kDead), auto-re-homed from
//     its last checkpoint, and post-recovery answers are BIT-IDENTICAL to
//     an in-process reference — the recovered cell restores the exact
//     serialized cut and re-derives the same per-shard seed schedule;
//   * bounded loss is exact, never silent: updates_lost_total equals the
//     acked-but-unsnapshotted exposure window plus degraded-mode drops;
//   * FailoverDrill (checkpoint + crash + recover at ONE barrier) is
//     provably loss-free for all six families, with clean and torn-frame
//     deaths (the torn variant exercises the CRC32 reject path and must
//     not poison the pipeline);
//   * graceful degradation: a dead shard fails TrySubmit fast with
//     Unavailable, queries keep answering from the last folded snapshot
//     with the staleness flag set, and WaitFor bounds producer waits;
//   * reclamation: retired cells (and their loopback server threads and
//     socket fds) are destroyed when the last topology view drops, so a
//     reshard/recover loop does not leak (the ASan CI pass runs this too).
//
// Runs under TSan in CI: the supervisor, workers, producers, and query
// threads all race here on purpose.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <dirent.h>
#endif

#include "common/random.h"
#include "engine/backend.h"
#include "engine/client.h"
#include "engine/registry.h"
#include "engine/remote_backend.h"
#include "stream/workload.h"

#include "engine_test_util.h"

namespace wbs::engine {
namespace {

SketchConfig TestConfig(uint64_t universe, uint64_t seed) {
  return SketchConfig{}.WithUniverse(universe).WithSeed(seed);
}

stream::TurnstileStream ZipfTurnstile(uint64_t universe, size_t n,
                                      uint64_t seed) {
  wbs::RandomTape tape(seed);
  tape.set_logging(false);
  auto items = stream::ZipfStream(universe, n, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  return s;
}

const std::vector<std::string>& FiveFamilies() {
  static const std::vector<std::string> kNames = {
      "misra_gries", "ams_f2", "sis_l0", "robust_hh", "crhf_hh"};
  return kNames;
}

/// A supervised loopback client: fast heartbeats so detection completes in
/// test time, recovery re-homing into fresh loopback cells (placement stays
/// homogeneous, so cross-backend equality keeps holding afterwards).
std::unique_ptr<Client> MakeSupervisedClient(std::vector<std::string> sketches,
                                             const SketchConfig& cfg,
                                             size_t shards, size_t threads,
                                             bool auto_recover) {
  ClientOptions opts;
  opts.ingest.num_shards = shards;
  opts.ingest.num_threads = threads;
  opts.ingest.sketches = std::move(sketches);
  opts.ingest.config = cfg;
  opts.ingest.backend = LoopbackBackendFactory();
  opts.ingest.failover.heartbeat_interval_ms = 10;
  opts.ingest.failover.heartbeat_timeout_ms = 50;
  opts.ingest.failover.dead_after_misses = 2;
  opts.ingest.failover.auto_recover = auto_recover;
  opts.ingest.failover.recovery_backend = LoopbackBackendFactory();
  auto client = Client::Create(opts);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

bool PollUntil(const std::function<bool()>& pred, int timeout_ms = 30000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

const TraceSpan* FindSpan(const std::vector<TraceSpan>& spans,
                          const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

/// Every family's merged answer in `got` must equal `want` bit-for-bit —
/// scalar, update count, and the full candidate list.
void ExpectAnswersEqual(Client* got, Client* want,
                        const std::vector<std::string>& sketches) {
  for (const std::string& name : sketches) {
    auto h_got = got->Handle(name);
    auto h_want = want->Handle(name);
    ASSERT_TRUE(h_got.ok() && h_want.ok()) << name;
    auto s_got = got->RawSummary(h_got.value());
    auto s_want = want->RawSummary(h_want.value());
    ASSERT_TRUE(s_got.ok()) << name << ": " << s_got.status().ToString();
    ASSERT_TRUE(s_want.ok()) << name << ": " << s_want.status().ToString();
    EXPECT_FALSE(s_got.value().stale) << name;
    EXPECT_EQ(s_got.value().scalar, s_want.value().scalar) << name;
    EXPECT_EQ(s_got.value().has_scalar, s_want.value().has_scalar) << name;
    EXPECT_EQ(s_got.value().updates, s_want.value().updates) << name;
    ASSERT_EQ(s_got.value().items.size(), s_want.value().items.size()) << name;
    for (size_t i = 0; i < s_got.value().items.size(); ++i) {
      EXPECT_EQ(s_got.value().items[i].item, s_want.value().items[i].item)
          << name;
      EXPECT_EQ(s_got.value().items[i].estimate,
                s_want.value().items[i].estimate)
          << name;
    }
  }
}

// -------------------------------------------------- checkpoint machinery --

TEST(FailoverTest, PeriodicCheckpointsDrainTheExposureWindow) {
  ClientOptions opts;
  opts.ingest.num_shards = 2;
  opts.ingest.num_threads = 1;
  opts.ingest.sketches = {"ams_f2", "misra_gries"};
  opts.ingest.config = TestConfig(1 << 10, 70);
  opts.ingest.backend = InProcessBackendFactory();
  opts.ingest.failover.checkpoint_interval_ms = 10;  // supervisor-driven cuts
  auto client = Client::Create(opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto s = ZipfTurnstile(1 << 10, 8000, 71);
  ASSERT_TRUE(Replay(client.value().get(), s, 1024,
                     ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(client.value()->Flush().ok());
  // Everything acked is exposed until the next periodic cut lands; then
  // the window is exactly empty (no traffic races the checkpoint here).
  EXPECT_TRUE(PollUntil([&] {
    bool drained = true;
    for (size_t shard = 0; shard < 2; ++shard) {
      drained &=
          client.value()->Health(shard).updates_acked_unsnapshotted == 0;
    }
    return drained;
  })) << "periodic checkpoints never covered the acked stream";

  // In-process placements cannot crash — injection is a typed refusal, not
  // a silent no-op.
  Status crash = client.value()->InjectShardCrash(0);
  ASSERT_FALSE(crash.ok());
  EXPECT_EQ(crash.code(), Status::Code::kUnimplemented) << crash.ToString();
  ASSERT_TRUE(client.value()->Finish().ok());
  EXPECT_NE(FindSpan(client.value()->TraceSpans(), "checkpoint"), nullptr);
}

// ------------------------------------------- detection + auto-recovery --

TEST(FailoverTest, HeartbeatDetectsCleanCrashAndAutoRecovers) {
  const uint64_t universe = 1 << 12;
  const SketchConfig cfg = TestConfig(universe, 72);
  auto s1 = ZipfTurnstile(universe, 20000, 73);
  auto s2 = ZipfTurnstile(universe, 20000, 74);

  auto client = MakeSupervisedClient(FiveFamilies(), cfg, 2, 2,
                                     /*auto_recover=*/true);
  ASSERT_TRUE(Replay(client.get(), s1, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(client->Flush().ok());
  ASSERT_TRUE(client->Checkpoint().ok());

  // Kill shard 0's server mid-life, with NO barrier: the realistic death.
  ASSERT_TRUE(client->InjectShardCrash(0).ok());
  ASSERT_TRUE(PollUntil([&] { return client->Health(0).recoveries >= 1; }))
      << "supervisor never detected + re-homed the crashed shard";

  const ShardHealthInfo health = client->Health(0);
  EXPECT_EQ(health.health, ShardHealth::kHealthy);
  EXPECT_EQ(health.recoveries, 1u);
  // The checkpoint covered every acked update and nothing was submitted
  // into the outage window, so the loss bound is exactly zero.
  EXPECT_EQ(health.updates_lost_total, 0u);
  EXPECT_EQ(health.dropped_updates, 0u);

  const auto spans = client->TraceSpans();
  const TraceSpan* dead = FindSpan(spans, "shard_dead");
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->Attr("shard"), 0u);
  EXPECT_GE(dead->Attr("missed_heartbeats"), 2u);
  const TraceSpan* recover = FindSpan(spans, "recover_shard");
  ASSERT_NE(recover, nullptr);
  EXPECT_EQ(recover->Attr("updates_lost"), 0u);
  EXPECT_EQ(recover->Attr("restored"), 1u);

  // Recovery IS MoveShard from the checkpoint: the restored cell carries
  // the same serialized cut a crash-free handoff at the same boundary
  // would, so continuing the stream stays bit-identical to an in-process
  // reference that moved the shard instead of losing it — for every
  // family, including the sampling heavy hitters (both continue as the
  // identical frozen prefix + identically-seeded fresh sampler).
  ASSERT_TRUE(Replay(client.get(), s2, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(client->Finish().ok());

  auto reference =
      MakeClient(FiveFamilies(), cfg, 2, 0, InProcessBackendFactory());
  ASSERT_TRUE(Replay(reference.get(), s1, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->MoveShard(0, InProcessBackendFactory()).ok());
  ASSERT_TRUE(Replay(reference.get(), s2, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());
  ExpectAnswersEqual(client.get(), reference.get(), FiveFamilies());
}

// ------------------------------------------------ loss-free drill paths --

/// Mid-replay FailoverDrill: the drill checkpoints, crashes, and recovers
/// at one barrier, so it must equal a crash-free MoveShard at the same
/// batch boundary — bit-identically, for every family (the state-exact
/// families trivially, the sampling heavy hitters because both sides
/// continue as the identical frozen prefix + identically-seeded fresh
/// sampler). `torn` leaves a torn frame on the data channel — the death is
/// observed through the CRC32 reject instead of a failed heartbeat, and
/// must not poison the pipeline.
void CheckDrillIsLossFree(bool torn) {
  const uint64_t universe = 1 << 12;
  const SketchConfig cfg = TestConfig(universe, 75);
  auto s = ZipfTurnstile(universe, 30000, torn ? 76 : 77);
  const size_t batch = 1024;
  const size_t batches = (s.size() + batch - 1) / batch;
  const size_t drill_at = (batches * 3) / 4;

  auto client = MakeClient(FiveFamilies(), cfg, 4, 2, LoopbackBackendFactory());
  auto reference =
      MakeClient(FiveFamilies(), cfg, 4, 0, InProcessBackendFactory());
  size_t index = 0;
  for (size_t off = 0; off < s.size(); off += batch, ++index) {
    if (index == drill_at) {
      ASSERT_TRUE(
          client->FailoverDrill(0, torn, LoopbackBackendFactory()).ok());
      ASSERT_TRUE(reference->MoveShard(0, InProcessBackendFactory()).ok());
    }
    const size_t n = std::min(batch, s.size() - off);
    ASSERT_TRUE(client->Submit(s.data() + off, n).ok());
    ASSERT_TRUE(reference->Submit(s.data() + off, n).ok());
  }
  ASSERT_TRUE(client->Finish().ok());
  ASSERT_TRUE(reference->Finish().ok());

  const ShardHealthInfo health = client->Health(0);
  EXPECT_EQ(health.recoveries, 1u);
  EXPECT_EQ(health.updates_lost_total, 0u);
  EXPECT_NE(FindSpan(client->TraceSpans(), "failover_drill"), nullptr);
  ExpectAnswersEqual(client.get(), reference.get(), FiveFamilies());
}

TEST(FailoverTest, FailoverDrillIsLossFreeForAllFamilies) {
  CheckDrillIsLossFree(/*torn=*/false);
}

TEST(FailoverTest, TornFrameDeathIsCaughtByCrcAndStaysLossFree) {
  CheckDrillIsLossFree(/*torn=*/true);
}

TEST(FailoverTest, FailoverDrillPreservesRankDecision) {
  // The sixth family: rank_decision is state-exact over the wire, so a
  // drill splitting its diagonal stream must not change the verdict.
  SketchConfig cfg = TestConfig(1, 78);
  cfg.rank.n = 32;
  cfg.rank.k = 8;
  stream::TurnstileStream diag;
  for (size_t i = 0; i < 8; ++i) {
    diag.push_back({uint64_t(i) * cfg.rank.n + i, 1});
  }
  for (bool torn : {false, true}) {
    auto client = MakeClient({"rank_decision"}, cfg, 2, 1,
                             LoopbackBackendFactory());
    ASSERT_TRUE(client->Submit(diag.data(), 4).ok());
    ASSERT_TRUE(client->FailoverDrill(0, torn,
                                      LoopbackBackendFactory()).ok());
    ASSERT_TRUE(client->Submit(diag.data() + 4, 4).ok());
    ASSERT_TRUE(client->Finish().ok());
    EXPECT_EQ(client->Health(0).updates_lost_total, 0u) << "torn=" << torn;

    auto reference = MakeClient({"rank_decision"}, cfg, 2, 0,
                                InProcessBackendFactory());
    ASSERT_TRUE(reference->Submit(diag).ok());
    ASSERT_TRUE(reference->Finish().ok());
    auto got = client->QueryRank(client->Handle("rank_decision").value());
    auto want =
        reference->QueryRank(reference->Handle("rank_decision").value());
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(got.value().rank_at_least_k, want.value().rank_at_least_k);
    EXPECT_TRUE(got.value().rank_at_least_k);
    EXPECT_EQ(got.value().updates, want.value().updates);
  }
}

TEST(FailoverTest, DrillRacingProducersLosesNothing) {
  // Producers hammer the engine while the drill runs: the barrier parks
  // their batches and re-scatters them under the bumped generation, so the
  // order-independent linear families must still be exact (TSan hunts the
  // supervisor / barrier / producer interleavings here).
  const uint64_t universe = 1 << 12;
  const SketchConfig cfg = TestConfig(universe, 79);
  auto s = ZipfTurnstile(universe, 40000, 80);
  auto client = MakeSupervisedClient({"ams_f2", "sis_l0"}, cfg, 4, 2,
                                     /*auto_recover=*/true);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      const size_t batch = 512;
      for (size_t off = p * batch; off < s.size(); off += 2 * batch) {
        auto t = client->Submit(s.data() + off,
                                std::min(batch, s.size() - off));
        ASSERT_TRUE(t.ok());
      }
    });
  }
  for (int drill = 0; drill < 3; ++drill) {
    ASSERT_TRUE(
        client->FailoverDrill(drill % 4, /*torn=*/drill == 1,
                              LoopbackBackendFactory()).ok());
  }
  for (auto& t : producers) t.join();
  ASSERT_TRUE(client->Finish().ok());
  for (size_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(client->Health(shard).updates_lost_total, 0u) << shard;
  }

  auto reference = MakeClient({"ams_f2", "sis_l0"}, cfg, 4, 0,
                              InProcessBackendFactory());
  ASSERT_TRUE(Replay(reference.get(), s, 512, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());
  for (const char* name : {"ams_f2", "sis_l0"}) {
    auto got = client->QueryScalar(client->Handle(name).value());
    auto want = reference->QueryScalar(reference->Handle(name).value());
    ASSERT_TRUE(got.ok() && want.ok()) << name;
    EXPECT_EQ(got.value().value, want.value().value) << name;
    EXPECT_EQ(got.value().updates, uint64_t(s.size())) << name;
  }
}

// ---------------------------------------------------- degradation modes --

TEST(FailoverTest, DeadShardFailsFastServesStaleAndRecoversExactly) {
  const uint64_t universe = 1 << 12;
  const SketchConfig cfg = TestConfig(universe, 81);
  auto s1 = ZipfTurnstile(universe, 20000, 82);
  auto s2 = ZipfTurnstile(universe, 20000, 83);
  // auto_recover off: the shard stays dead until the manual rescue, which
  // is the window where every degradation contract must hold.
  auto client = MakeSupervisedClient({"ams_f2", "misra_gries"}, cfg, 2, 2,
                                     /*auto_recover=*/false);
  auto f2 = client->Handle("ams_f2").value();
  ASSERT_TRUE(Replay(client.get(), s1, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(client->Flush().ok());
  ASSERT_TRUE(client->Checkpoint().ok());
  auto before = client->QueryScalar(f2);  // warms the merge-cache fold
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before.value().stale);

  ASSERT_TRUE(client->InjectShardCrash(0).ok());
  ASSERT_TRUE(PollUntil([&] {
    return client->Health(0).health == ShardHealth::kDead;
  })) << "supervisor never declared the crashed shard dead";

  // Fail-fast ingest: a non-blocking submit routed onto the dead shard is
  // refused with Unavailable — the caller owns the redirect/retry policy,
  // and no valve fills up behind a shard that cannot drain.
  auto rejected = client->TrySubmit(s2);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kUnavailable)
      << rejected.status().ToString();

  // Degraded queries: the last folded snapshot keeps answering, flagged.
  auto during = client->QueryScalar(f2);
  ASSERT_TRUE(during.ok());
  EXPECT_TRUE(during.value().stale);
  EXPECT_EQ(during.value().value, before.value().value);
  EXPECT_EQ(during.value().updates, before.value().updates);
  auto raw = client->RawSummary(f2);
  ASSERT_TRUE(raw.ok());
  EXPECT_TRUE(raw.value().stale);

  // Manual rescue restores the checkpointed cut: zero loss, staleness
  // clears, and the engine continues bit-identically.
  ASSERT_TRUE(client->RecoverShard(0, LoopbackBackendFactory()).ok());
  EXPECT_EQ(client->Health(0).health, ShardHealth::kHealthy);
  EXPECT_EQ(client->Health(0).recoveries, 1u);
  EXPECT_EQ(client->Health(0).updates_lost_total, 0u);
  auto after = client->QueryScalar(f2);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().stale);
  EXPECT_EQ(after.value().value, before.value().value);

  ASSERT_TRUE(Replay(client.get(), s2, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(client->Finish().ok());
  auto reference = MakeClient({"ams_f2", "misra_gries"}, cfg, 2, 0,
                              InProcessBackendFactory());
  ASSERT_TRUE(Replay(reference.get(), s1, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(Replay(reference.get(), s2, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());
  ExpectAnswersEqual(client.get(), reference.get(),
                     {"ams_f2", "misra_gries"});
}

// ------------------------------------------------------ WaitFor deadline --

/// A sketch whose ApplyBatch parks on a gate — pins a ticket in flight so
/// WaitFor's deadline is deterministic (never a sleep race).
struct ParkGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = true;
  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    open = false;
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void Pass() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
};

ParkGate& Gate() {
  static ParkGate* gate = new ParkGate();
  return *gate;
}

class ParkSketch final : public Sketch {
 public:
  const std::string& name() const override {
    static const std::string kName = "failover_park";
    return kName;
  }
  Status Update(const stream::TurnstileUpdate& u) override {
    if (u.delta != 0) ++updates_;
    return Status::OK();
  }
  Status ApplyBatch(const UpdateBatch& batch) override {
    Gate().Pass();
    for (size_t i = 0; i < batch.size; ++i) {
      if (batch.data[i].delta != 0) ++updates_;
    }
    return Status::OK();
  }
  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name();
    s.has_scalar = true;
    s.scalar = double(updates_);
    s.updates = updates_;
    return s;
  }
  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const ParkSketch*>(&other);
    if (o == nullptr) return Status::InvalidArgument("park: type mismatch");
    updates_ += o->updates_;
    return Status::OK();
  }
  uint64_t SpaceBits() const override { return 64; }

 private:
  uint64_t updates_ = 0;
};

bool RegisterParkSketch() {
  static bool once = [] {
    Status s = SketchRegistry::Global().Register(
        "failover_park",
        [](const SketchConfig&) { return std::make_unique<ParkSketch>(); },
        SketchFamily::kScalarEstimate);
    return s.ok();
  }();
  return once;
}

TEST(FailoverTest, WaitForTimesOutThenSucceedsOnTheSameTicket) {
  ASSERT_TRUE(RegisterParkSketch());
  ClientOptions opts;
  opts.ingest.num_shards = 1;
  opts.ingest.num_threads = 1;
  opts.ingest.sketches = {"failover_park"};
  opts.ingest.config = TestConfig(1 << 10, 84);
  opts.ingest.backend = InProcessBackendFactory();
  auto client = Client::Create(opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Gate().Close();
  const stream::TurnstileStream four{{1, 1}, {2, 1}, {3, 1}, {4, 1}};
  auto ticket = client.value()->Submit(four);
  ASSERT_TRUE(ticket.ok());
  Status timed_out = client.value()->WaitFor(ticket.value(), 50);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.code(), Status::Code::kDeadlineExceeded)
      << timed_out.ToString();

  // The ticket survives the timeout: re-waiting after the worker unparks
  // completes normally.
  Gate().Open();
  EXPECT_TRUE(client.value()->WaitFor(ticket.value(), 30000).ok());
  EXPECT_TRUE(client.value()->Wait(ticket.value()).ok());
  ASSERT_TRUE(client.value()->Finish().ok());
}

// --------------------------------------------------------- reclamation --

#ifdef __linux__
size_t OpenFdCount() {
  size_t count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

size_t ThreadCount() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  size_t threads = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "Threads: %zu", &threads) == 1) break;
  }
  std::fclose(f);
  return threads;
}
#endif  // __linux__

TEST(FailoverTest, ReshardRecoverLoopReclaimsCellsAndThreads) {
#ifndef __linux__
  GTEST_SKIP() << "fd/thread accounting reads /proc";
#else
  // Every drill and move retires a loopback cell (server threads + two
  // socketpairs). shared_ptr placement ownership must reclaim each one as
  // the last topology view referencing it drops — a long-lived engine that
  // reshards continuously would otherwise bleed fds and threads. The ASan
  // CI pass runs this same loop with leak detection on.
  const SketchConfig cfg = TestConfig(1 << 10, 85);
  auto s = ZipfTurnstile(1 << 10, 4000, 86);
  auto client = MakeClient({"ams_f2", "misra_gries"}, cfg, 2, 1,
                           LoopbackBackendFactory());
  auto f2 = client->Handle("ams_f2").value();
  ASSERT_TRUE(Replay(client.get(), s, 1024, ReplayChurn::kDisabled).ok());

  auto churn_once = [&](int i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(
          client->FailoverDrill(0, /*torn=*/i % 4 == 2,
                                LoopbackBackendFactory()).ok());
    } else {
      ASSERT_TRUE(client->MoveShard(0, LoopbackBackendFactory()).ok());
    }
    ASSERT_TRUE(client->Submit(s.data(), 256).ok());
    ASSERT_TRUE(client->Flush().ok());
    // Querying re-folds under the new generation, releasing the previous
    // topology view (and with it the retired cell).
    ASSERT_TRUE(client->QueryScalar(f2).ok());
  };

  for (int i = 0; i < 3; ++i) churn_once(i);  // warm up to steady state
  const size_t fds_before = OpenFdCount();
  const size_t threads_before = ThreadCount();
  for (int i = 3; i < 13; ++i) churn_once(i);
  const size_t fds_after = OpenFdCount();
  const size_t threads_after = ThreadCount();

  // Ten retired cells would hold ~40 fds and ~20 threads if leaked; a
  // reclaiming engine stays flat (small slack for transient /proc noise).
  EXPECT_LE(fds_after, fds_before + 4)
      << "retired loopback cells are leaking file descriptors";
  EXPECT_LE(threads_after, threads_before + 2)
      << "retired loopback cells are leaking server threads";
  ASSERT_TRUE(client->Finish().ok());
#endif
}

}  // namespace
}  // namespace wbs::engine
