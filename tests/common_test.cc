// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Unit and property tests for src/common: Status/Result, bit utilities,
// modular arithmetic, and the white-box RandomTape.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/bits.h"
#include "common/modmath.h"
#include "common/random.h"
#include "common/status.h"

namespace wbs {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("epsilon must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "epsilon must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: epsilon must be positive");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            Status::Code::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), Status::Code::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("abc"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "abc");
}

// ------------------------------------------------------------------ Bits --

TEST(BitsTest, BitsForValue) {
  EXPECT_EQ(BitsForValue(0), 1u);
  EXPECT_EQ(BitsForValue(1), 1u);
  EXPECT_EQ(BitsForValue(2), 2u);
  EXPECT_EQ(BitsForValue(3), 2u);
  EXPECT_EQ(BitsForValue(4), 3u);
  EXPECT_EQ(BitsForValue(255), 8u);
  EXPECT_EQ(BitsForValue(256), 9u);
  EXPECT_EQ(BitsForValue(~uint64_t{0}), 64u);
}

TEST(BitsTest, BitsForUniverse) {
  EXPECT_EQ(BitsForUniverse(1), 1u);
  EXPECT_EQ(BitsForUniverse(2), 1u);
  EXPECT_EQ(BitsForUniverse(3), 2u);
  EXPECT_EQ(BitsForUniverse(4), 2u);
  EXPECT_EQ(BitsForUniverse(5), 3u);
  EXPECT_EQ(BitsForUniverse(uint64_t{1} << 32), 32u);
}

TEST(BitsTest, CeilAndFloorLog2) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(1023), 9u);
  EXPECT_EQ(FloorLog2(1024), 10u);
}

TEST(BitsTest, Pow2Helpers) {
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(0));
  EXPECT_FALSE(IsPow2(63));
  EXPECT_EQ(NextPow2(5), 8u);
  EXPECT_EQ(NextPow2(8), 8u);
}

TEST(BitsTest, ReverseBits) {
  EXPECT_EQ(ReverseBits(0b001, 3), 0b100u);
  EXPECT_EQ(ReverseBits(0b110, 3), 0b011u);
  EXPECT_EQ(ReverseBits(0b1, 1), 0b1u);
}

TEST(BitsTest, SpaceMeterAccumulates) {
  SpaceMeter m;
  m.AddValue(255);     // 8
  m.AddUniverseId(16); // 4
  m.AddBits(10);       // 10
  EXPECT_EQ(m.Total(), 22u);
}

// --------------------------------------------------------------- ModMath --

TEST(ModMathTest, MulModMatchesSmall) {
  EXPECT_EQ(MulMod(7, 8, 13), 56 % 13);
  EXPECT_EQ(MulMod(0, 123, 7), 0u);
}

TEST(ModMathTest, MulModNoOverflow) {
  const uint64_t big = ~uint64_t{0} - 58;  // close to 2^64
  const uint64_t m = (uint64_t{1} << 61) - 1;
  // Verified against 128-bit arithmetic directly.
  u128 expect = (u128(big) * big) % m;
  EXPECT_EQ(MulMod(big, big, m), uint64_t(expect));
}

TEST(ModMathTest, AddSubMod) {
  const uint64_t m = (uint64_t{1} << 61) - 1;
  EXPECT_EQ(AddMod(m - 1, 5, m), 4u);
  EXPECT_EQ(SubMod(3, 5, m), m - 2);
  EXPECT_EQ(SubMod(5, 5, m), 0u);
}

TEST(ModMathTest, PowModBasics) {
  EXPECT_EQ(PowMod(2, 10, 10007), 1024u);
  EXPECT_EQ(PowMod(5, 0, 7), 1u);
  EXPECT_EQ(PowMod(5, 1, 7), 5u);
  EXPECT_EQ(PowMod(123, 456, 1), 0u);
}

TEST(ModMathTest, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1 — the identity behind
  // the Karp-Rabin attack of Section 2.6.
  for (uint64_t p : std::vector<uint64_t>{10007, 1000003, (uint64_t{1} << 61) - 1}) {
    for (uint64_t a : {2ULL, 3ULL, 12345ULL}) {
      EXPECT_EQ(PowMod(a, p - 1, p), 1u) << "p=" << p << " a=" << a;
    }
  }
}

TEST(ModMathTest, InvModInvertsAll) {
  const uint64_t p = 10007;
  for (uint64_t a = 1; a < 200; ++a) {
    uint64_t inv = InvMod(a, p);
    EXPECT_EQ(MulMod(a, inv, p), 1u) << a;
  }
}

TEST(ModMathTest, InvModLargeModulus) {
  const uint64_t p = (uint64_t{1} << 61) - 1;
  for (uint64_t a : std::vector<uint64_t>{2, 123456789, p - 1}) {
    EXPECT_EQ(MulMod(a, InvMod(a, p), p), 1u);
  }
}

TEST(ModMathTest, InvModNonInvertible) {
  EXPECT_EQ(InvMod(6, 9), 0u);   // gcd 3
  EXPECT_EQ(InvMod(0, 17), 0u);
}

TEST(ModMathTest, ExtGcdBezout) {
  int64_t x = 0, y = 0;
  int64_t g = ExtGcd(240, 46, &x, &y);
  EXPECT_EQ(g, 2);
  EXPECT_EQ(240 * x + 46 * y, 2);
}

TEST(ModMathTest, IsPrimeSmall) {
  std::set<uint64_t> primes = {2,  3,  5,  7,  11, 13, 17, 19, 23,
                               29, 31, 37, 41, 43, 47, 53, 59, 61};
  for (uint64_t n = 0; n < 64; ++n) {
    EXPECT_EQ(IsPrime(n), primes.count(n) == 1) << n;
  }
}

TEST(ModMathTest, IsPrimeKnownLarge) {
  EXPECT_TRUE(IsPrime((uint64_t{1} << 61) - 1));   // Mersenne prime
  EXPECT_TRUE(IsPrime(1000000007ULL));
  EXPECT_TRUE(IsPrime(18446744073709551557ULL));   // largest 64-bit prime
  EXPECT_FALSE(IsPrime((uint64_t{1} << 61) + 1));
  EXPECT_FALSE(IsPrime(1000000007ULL * 3));
}

TEST(ModMathTest, IsPrimeCarmichael) {
  // Carmichael numbers fool Fermat tests but not Miller-Rabin.
  for (uint64_t c : {561ULL, 1105ULL, 1729ULL, 41041ULL, 825265ULL}) {
    EXPECT_FALSE(IsPrime(c)) << c;
  }
}

TEST(ModMathTest, NextPrime) {
  EXPECT_EQ(NextPrime(2), 2u);
  EXPECT_EQ(NextPrime(14), 17u);
  EXPECT_EQ(NextPrime(17), 17u);
  EXPECT_EQ(NextPrime(1000000), 1000003u);
}

TEST(ModMathTest, DistinctPrimeFactors) {
  EXPECT_EQ(DistinctPrimeFactors(12), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(DistinctPrimeFactors(97), (std::vector<uint64_t>{97}));
  EXPECT_EQ(DistinctPrimeFactors(2 * 3 * 5 * 7 * 11),
            (std::vector<uint64_t>{2, 3, 5, 7, 11}));
  // Product of two large primes exercises Pollard rho.
  EXPECT_EQ(DistinctPrimeFactors(1000003ULL * 1000033ULL),
            (std::vector<uint64_t>{1000003, 1000033}));
}

TEST(ModMathTest, RandomPrimeHasRequestedBits) {
  RandomTape tape(1);
  auto rng = [&] { return tape.NextWord(); };
  for (int bits : {8, 16, 31, 48, 61}) {
    uint64_t p = RandomPrime(bits, rng);
    EXPECT_TRUE(IsPrime(p));
    EXPECT_EQ(int(BitsForValue(p)), bits);
  }
}

TEST(ModMathTest, RandomSafePrimeStructure) {
  RandomTape tape(2);
  auto rng = [&] { return tape.NextWord(); };
  for (int bits : {20, 24, 30}) {
    uint64_t p = RandomSafePrime(bits, rng);
    EXPECT_TRUE(IsPrime(p));
    EXPECT_TRUE(IsPrime((p - 1) / 2));
    EXPECT_EQ(int(BitsForValue(p)), bits);
  }
}

TEST(ModMathTest, FindGeneratorGeneratesGroup) {
  RandomTape tape(3);
  auto rng = [&] { return tape.NextWord(); };
  const uint64_t p = 10007;
  uint64_t g = FindGenerator(p, rng);
  // Order of g must be exactly p-1: g^((p-1)/f) != 1 for all prime f.
  for (uint64_t f : DistinctPrimeFactors(p - 1)) {
    EXPECT_NE(PowMod(g, (p - 1) / f, p), 1u);
  }
}

TEST(ModMathTest, QuadraticResidueGeneratorHasOrderQ) {
  RandomTape tape(4);
  auto rng = [&] { return tape.NextWord(); };
  const uint64_t p = RandomSafePrime(24, rng);
  const uint64_t q = (p - 1) / 2;
  uint64_t g = FindQuadraticResidueGenerator(p, rng);
  EXPECT_EQ(PowMod(g, q, p), 1u);  // in the order-q subgroup
  EXPECT_NE(g, 1u);
}

// ------------------------------------------------------------ RandomTape --

TEST(RandomTapeTest, DeterministicGivenSeed) {
  RandomTape a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextWord(), b.NextWord());
  }
}

TEST(RandomTapeTest, DifferentSeedsDiffer) {
  RandomTape a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.NextWord() == b.NextWord()) ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTapeTest, LogRecordsEveryWord) {
  RandomTape t(7);
  std::vector<uint64_t> expect;
  for (int i = 0; i < 20; ++i) expect.push_back(t.NextWord());
  EXPECT_EQ(t.log(), expect);
  EXPECT_EQ(t.words_consumed(), 20u);
}

TEST(RandomTapeTest, LoggingCanBeDisabled) {
  RandomTape t(7);
  t.set_logging(false);
  t.NextWord();
  EXPECT_TRUE(t.log().empty());
  EXPECT_EQ(t.words_consumed(), 1u);
}

TEST(RandomTapeTest, UniformIntInRange) {
  RandomTape t(9);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(t.UniformInt(bound), bound);
    }
  }
}

TEST(RandomTapeTest, UniformIntCoversRange) {
  RandomTape t(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(t.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomTapeTest, UniformDoubleInUnitInterval) {
  RandomTape t(13);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    double x = t.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 2000, 0.5, 0.05);
}

TEST(RandomTapeTest, BernoulliMatchesProbability) {
  RandomTape t(17);
  int hits = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) hits += t.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / trials, 0.3, 0.03);
}

TEST(RandomTapeTest, BernoulliDegenerateStillConsumes) {
  // The tape's draw schedule must be data-independent so the adversary's
  // view of consumed randomness does not leak control flow.
  RandomTape t(19);
  EXPECT_FALSE(t.Bernoulli(0.0));
  EXPECT_TRUE(t.Bernoulli(1.0));
  EXPECT_EQ(t.words_consumed(), 2u);
}

TEST(RandomTapeTest, SignBitBalanced) {
  RandomTape t(23);
  int sum = 0;
  for (int i = 0; i < 4000; ++i) sum += t.SignBit();
  EXPECT_LT(std::abs(sum), 300);
}

TEST(RandomTapeTest, SeedExposed) {
  RandomTape t(0xdeadbeef);
  EXPECT_EQ(t.seed(), 0xdeadbeefULL);
}

TEST(RandomTapeTest, ClearLogKeepsCounting) {
  RandomTape t(29);
  t.NextWord();
  t.ClearLog();
  EXPECT_TRUE(t.log().empty());
  t.NextWord();
  EXPECT_EQ(t.log().size(), 1u);
  EXPECT_EQ(t.words_consumed(), 2u);
}

// Parameterized sweep: modular arithmetic laws over random operands and
// several moduli, including the 61-bit Mersenne prime.
class ModLawsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModLawsTest, RingLaws) {
  const uint64_t m = GetParam();
  RandomTape t(m);
  for (int i = 0; i < 50; ++i) {
    uint64_t a = t.NextWord() % m, b = t.NextWord() % m,
             c = t.NextWord() % m;
    // Commutativity / associativity / distributivity.
    EXPECT_EQ(MulMod(a, b, m), MulMod(b, a, m));
    EXPECT_EQ(AddMod(a, b, m), AddMod(b, a, m));
    EXPECT_EQ(MulMod(MulMod(a, b, m), c, m), MulMod(a, MulMod(b, c, m), m));
    EXPECT_EQ(MulMod(a, AddMod(b, c, m), m),
              AddMod(MulMod(a, b, m), MulMod(a, c, m), m));
    // Sub inverts add.
    EXPECT_EQ(SubMod(AddMod(a, b, m), b, m), a % m);
  }
}

TEST_P(ModLawsTest, PowModAgreesWithRepeatedMul) {
  const uint64_t m = GetParam();
  RandomTape t(m + 1);
  uint64_t a = t.NextWord() % m;
  uint64_t acc = 1 % m;
  for (uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(PowMod(a, e, m), acc);
    acc = MulMod(acc, a, m);
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, ModLawsTest,
                         ::testing::Values(2ULL, 17ULL, 10007ULL,
                                           1000000007ULL,
                                           (uint64_t{1} << 61) - 1,
                                           18446744073709551557ULL));

// --------------------------------------------------------------- BarrettQ --

TEST(BarrettTest, AgreesWithMulModOnRandomOperands) {
  // The Barrett path must be bit-identical to the `% q` path for every
  // operand pair, including moduli near the 2^61 ceiling the SIS sketches
  // use and the largest supported (< 2^62) moduli.
  std::vector<uint64_t> moduli = {2,
                                  3,
                                  17,
                                  10007,
                                  1000000007ULL,
                                  (uint64_t{1} << 61) - 1,  // Mersenne prime
                                  NextPrime(uint64_t{1} << 61),
                                  NextPrime((uint64_t{1} << 62) - 4096)};
  for (uint64_t q : moduli) {
    ASSERT_LT(q, uint64_t{1} << 62);
    BarrettQ bq(q);
    uint64_t s = q ^ 0xabcdef12345ULL;
    for (int trial = 0; trial < 2000; ++trial) {
      const uint64_t a = SplitMix64(&s);  // full 64-bit range, not just < q
      const uint64_t b = SplitMix64(&s);
      ASSERT_EQ(bq.MulMod(a, b), MulMod(a, b, q)) << "q=" << q;
    }
    // Adversarial corners: operands at the modulus and word boundaries.
    const uint64_t edge[] = {0, 1, q - 1, q, q + 1, ~uint64_t{0},
                             ~uint64_t{0} - 1, uint64_t{1} << 63};
    for (uint64_t a : edge) {
      for (uint64_t b : edge) {
        ASSERT_EQ(bq.MulMod(a, b), MulMod(a, b, q)) << "q=" << q;
      }
    }
  }
}

TEST(BarrettTest, ReducedAddSubMatchGeneralForms) {
  const uint64_t q = NextPrime(uint64_t{1} << 61);
  BarrettQ bq(q);
  uint64_t s = 99;
  for (int trial = 0; trial < 2000; ++trial) {
    const uint64_t a = SplitMix64(&s) % q;
    const uint64_t b = SplitMix64(&s) % q;
    EXPECT_EQ(bq.AddMod(a, b), AddMod(a, b, q));
    EXPECT_EQ(bq.SubMod(a, b), SubMod(a, b, q));
  }
}

TEST(BarrettTest, AccumulateAndSubtractModAreExactInverses) {
  const uint64_t q = NextPrime(uint64_t{1} << 61);
  uint64_t s = 7;
  std::vector<uint64_t> acc(257), add(257), original;
  for (size_t i = 0; i < acc.size(); ++i) {
    acc[i] = SplitMix64(&s) % q;
    add[i] = SplitMix64(&s) % q;
  }
  original = acc;
  AccumulateMod(acc.data(), add.data(), acc.size(), q);
  for (size_t i = 0; i < acc.size(); ++i) {
    EXPECT_EQ(acc[i], AddMod(original[i], add[i], q));
  }
  SubtractMod(acc.data(), add.data(), acc.size(), q);
  EXPECT_EQ(acc, original);
}

}  // namespace
}  // namespace wbs
