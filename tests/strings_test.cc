// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// String algorithms (Section 2.6): Karp-Rabin and its Fermat break, the
// robust streaming equality of Lemma 2.24, and Algorithm 6 pattern matching.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "strings/fingerprint.h"
#include "strings/pattern_match.h"
#include "stream/workload.h"

namespace wbs::strings {
namespace {

crypto::DlogParams Group(uint64_t seed = 1) {
  wbs::RandomTape tape(seed);
  return crypto::DlogParams::Generate(40, &tape);
}

// ----------------------------------------------------------------- Period --

TEST(PeriodTest, KnownCases) {
  EXPECT_EQ(SmallestPeriod("aaaa"), 1u);
  EXPECT_EQ(SmallestPeriod("ababab"), 2u);
  EXPECT_EQ(SmallestPeriod("abcabc"), 3u);
  EXPECT_EQ(SmallestPeriod("abcd"), 4u);
  EXPECT_EQ(SmallestPeriod("abaab"), 3u);
  EXPECT_EQ(SmallestPeriod("a"), 1u);
  EXPECT_EQ(SmallestPeriod(""), 0u);
}

TEST(PeriodTest, PartialLastRepeat) {
  // Period definition allows a partial trailing repeat.
  EXPECT_EQ(SmallestPeriod("abcab"), 3u);
  EXPECT_EQ(SmallestPeriod("ababa"), 2u);
}

TEST(PeriodTest, MatchesGeneratorPeriod) {
  wbs::RandomTape tape(2);
  for (size_t p : {2UL, 5UL, 8UL}) {
    std::string s = stream::PeriodicString(40, p, 6, &tape);
    // Generator guarantees period divides p (random periods may degenerate).
    EXPECT_EQ(p % SmallestPeriod(s), 0u) << s;
  }
}

// ------------------------------------------------------------- KarpRabin --

TEST(KarpRabinTest, IncrementalPolynomial) {
  KarpRabinParams params{10007, 3};
  KarpRabin kr(params);
  kr.Append(2);  // 2 * 3^0
  kr.Append(5);  // 5 * 3^1
  kr.Append(1);  // 1 * 3^2
  EXPECT_EQ(kr.value(), (2 + 15 + 9) % 10007u);
  EXPECT_EQ(kr.length(), 3u);
}

TEST(KarpRabinTest, EqualStringsEqualPrints) {
  wbs::RandomTape tape(3);
  KarpRabinParams params = KarpRabinParams::Generate(20, &tape);
  KarpRabin a(params), b(params);
  a.Append("hello world");
  b.Append("hello world");
  EXPECT_EQ(a.value(), b.value());
}

TEST(KarpRabinTest, GeneratedParamsArePrime) {
  wbs::RandomTape tape(4);
  KarpRabinParams params = KarpRabinParams::Generate(24, &tape);
  EXPECT_TRUE(wbs::IsPrime(params.p));
  EXPECT_GT(params.x, 1u);
  EXPECT_LT(params.x, params.p);
}

TEST(FermatAttackTest, CollisionOnDistinctStrings) {
  // The Section 2.6 white-box break: the adversary reads (p, x) and emits
  // two different strings with identical fingerprints.
  wbs::RandomTape tape(5);
  KarpRabinParams params = KarpRabinParams::Generate(12, &tape);  // small p
  const size_t len = size_t(params.p) + 10;
  auto [u, v] = FermatCollision(params, len);
  ASSERT_NE(u, v);
  KarpRabin fu(params), fv(params);
  for (char c : u) fu.Append(uint64_t(uint8_t(c)));
  for (char c : v) fv.Append(uint64_t(uint8_t(c)));
  EXPECT_EQ(fu.value(), fv.value()) << "Fermat collision must fool KR";
}

TEST(FermatAttackTest, OffsetVariant) {
  wbs::RandomTape tape(6);
  KarpRabinParams params = KarpRabinParams::Generate(10, &tape);
  const size_t len = size_t(params.p) + 50;
  auto [u, v] = FermatCollision(params, len, /*i=*/7);
  KarpRabin fu(params), fv(params);
  for (char c : u) fu.Append(uint64_t(uint8_t(c)));
  for (char c : v) fv.Append(uint64_t(uint8_t(c)));
  EXPECT_EQ(fu.value(), fv.value());
  EXPECT_EQ(u[7], char(1));
}

TEST(FermatAttackTest, DlogFingerprintResists) {
  // The same two strings have DIFFERENT discrete-log fingerprints: the
  // robust fingerprint is immune to the Fermat attack (Lemma 2.24).
  wbs::RandomTape tape(7);
  KarpRabinParams kr_params = KarpRabinParams::Generate(10, &tape);
  const size_t len = size_t(kr_params.p) + 10;
  auto [u, v] = FermatCollision(kr_params, len);
  crypto::DlogParams g = Group();
  crypto::DlogFingerprint fu(g), fv(g);
  for (char c : u) fu.AppendChar(uint64_t(uint8_t(c)), 1);
  for (char c : v) fv.AppendChar(uint64_t(uint8_t(c)), 1);
  EXPECT_NE(fu.value(), fv.value());
}

// ------------------------------------------------------ StreamingEquality --

TEST(StreamingEqualityTest, EqualStreams) {
  StreamingEquality eq(Group());
  for (char c : std::string("identical")) {
    eq.AppendU(uint64_t(uint8_t(c)), 8);
    eq.AppendV(uint64_t(uint8_t(c)), 8);
  }
  EXPECT_TRUE(eq.Equal());
}

TEST(StreamingEqualityTest, DetectsSingleCharDifference) {
  StreamingEquality eq(Group());
  std::string u = "identical", v = "identicaX";
  for (char c : u) eq.AppendU(uint64_t(uint8_t(c)), 8);
  for (char c : v) eq.AppendV(uint64_t(uint8_t(c)), 8);
  EXPECT_FALSE(eq.Equal());
}

TEST(StreamingEqualityTest, LengthMismatchDetected) {
  StreamingEquality eq(Group());
  eq.AppendU(0, 8);  // "\0" vs "" would collide by value; length disambiguates
  EXPECT_FALSE(eq.Equal());
}

TEST(StreamingEqualityTest, SpaceIsTwoGroupElements) {
  crypto::DlogParams g = Group();
  StreamingEquality eq(g);
  for (int i = 0; i < 1000; ++i) {
    eq.AppendU(1, 8);
    eq.AppendV(1, 8);
  }
  EXPECT_LE(eq.SpaceBits(), 2 * (g.ElementBits() + 14));
}

// -------------------------------------------------- PeriodicPatternMatcher --

std::vector<uint64_t> RunMatcher(const std::string& pattern,
                                 const std::string& text,
                                 uint64_t group_seed = 1) {
  crypto::DlogParams g = Group(group_seed);
  PeriodicPatternMatcher alg(pattern, SmallestPeriod(pattern), g, 8);
  for (char c : text) {
    EXPECT_TRUE(alg.Update({uint64_t(uint8_t(c)), 8}).ok());
  }
  return alg.Query();
}

std::vector<uint64_t> AsU64(const std::vector<size_t>& v) {
  return std::vector<uint64_t>(v.begin(), v.end());
}

TEST(PatternMatcherTest, SingleOccurrence) {
  EXPECT_EQ(RunMatcher("abab", "zzababzz"),
            AsU64(NaiveFindAll("zzababzz", "abab")));
}

TEST(PatternMatcherTest, OverlappingOccurrences) {
  // "ababab" contains "abab" at 0 and 2 (p = 2 apart).
  EXPECT_EQ(RunMatcher("abab", "ababab"),
            AsU64(NaiveFindAll("ababab", "abab")));
}

TEST(PatternMatcherTest, NoOccurrence) {
  EXPECT_TRUE(RunMatcher("abab", "cdcdcdcd").empty());
}

TEST(PatternMatcherTest, PatternEqualsText) {
  EXPECT_EQ(RunMatcher("abcabc", "abcabc"),
            (std::vector<uint64_t>{0}));
}

TEST(PatternMatcherTest, AperiodicPattern) {
  // Period = length: the pattern is its own period.
  EXPECT_EQ(RunMatcher("abcd", "xxabcdyyabcd"),
            AsU64(NaiveFindAll("xxabcdyyabcd", "abcd")));
}

// Randomized agreement sweep against the naive matcher.
class MatcherAgreementTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(MatcherAgreementTest, MatchesNaive) {
  auto [pat_len, period] = GetParam();
  wbs::RandomTape tape(pat_len * 37 + period);
  for (int trial = 0; trial < 5; ++trial) {
    std::string pattern = stream::PeriodicString(pat_len, period, 2, &tape);
    size_t true_period = SmallestPeriod(pattern);
    std::vector<size_t> planted;
    for (size_t pos = trial; pos + pat_len <= 200; pos += pat_len + 3) {
      planted.push_back(pos);
    }
    std::string text =
        stream::TextWithPlantedOccurrences(200, pattern, planted, 2, &tape);
    crypto::DlogParams g = Group(trial + 100);
    PeriodicPatternMatcher alg(pattern, true_period, g, 8);
    for (char c : text) {
      ASSERT_TRUE(alg.Update({uint64_t(uint8_t(c)), 8}).ok());
    }
    EXPECT_EQ(alg.Query(), AsU64(NaiveFindAll(text, pattern)))
        << "pattern=" << pattern << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatcherAgreementTest,
    ::testing::Values(std::pair<size_t, size_t>{4, 2},
                      std::pair<size_t, size_t>{6, 3},
                      std::pair<size_t, size_t>{8, 4},
                      std::pair<size_t, size_t>{9, 3},
                      std::pair<size_t, size_t>{12, 6},
                      std::pair<size_t, size_t>{5, 5}));

TEST(PatternMatcherTest, DenseAllSameCharacter) {
  // p = 1 pattern in an all-a text: every position matches.
  EXPECT_EQ(RunMatcher("aaa", "aaaaaa"),
            AsU64(NaiveFindAll("aaaaaa", "aaa")));
}

TEST(PatternMatcherTest, AlphabetWidthMismatchRejected) {
  crypto::DlogParams g = Group();
  PeriodicPatternMatcher alg("abab", 2, g, 8);
  EXPECT_FALSE(alg.Update({uint64_t('a'), 16}).ok());
}

TEST(PatternMatcherTest, SpaceBitsSmallRelativeToText) {
  crypto::DlogParams g = Group();
  std::string pattern = "abcabcabc";
  PeriodicPatternMatcher alg(pattern, 3, g, 8);
  wbs::RandomTape tape(9);
  const size_t text_len = 20000;
  for (size_t i = 0; i < text_len; ++i) {
    ASSERT_TRUE(
        alg.Update({uint64_t('a' + tape.UniformInt(3)), 8}).ok());
  }
  // State is O((p + n/p) group elements) — far below storing the text.
  EXPECT_LT(alg.SpaceBits(), text_len);
}

TEST(PatternMatcherTest, TracksTextLength) {
  crypto::DlogParams g = Group();
  PeriodicPatternMatcher alg("abab", 2, g, 8);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(alg.Update({uint64_t('a'), 8}).ok());
  }
  EXPECT_EQ(alg.text_length(), 10u);
}

}  // namespace
}  // namespace wbs::strings
