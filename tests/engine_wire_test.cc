// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The engine wire format: primitive and frame round trips, corruption /
// truncation / version-byte rejection, and — for every builtin sketch
// family — serialize → deserialize → Summary() bit-identity on Zipf,
// planted-heavy-hitter, and churn workloads. Corrupted or truncated state
// must come back as a Status error, never a crash or a silent accept.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/backend.h"
#include "engine/registry.h"
#include "engine/sketch.h"
#include "engine/wire.h"
#include "stream/workload.h"

namespace wbs::engine {
namespace {

// ---------------------------------------------------------- primitives --

TEST(WirePrimitivesTest, RoundTripAndBitExactDoubles) {
  wire::Writer w;
  w.U8(0xab);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.F64(0.1);  // not exactly representable: must survive bit-for-bit
  w.F64(-0.0);
  w.Str("hello");

  wire::Reader r(w.data());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d1, d2;
  std::string s;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.I64(&i64).ok());
  ASSERT_TRUE(r.F64(&d1).ok());
  ASSERT_TRUE(r.F64(&d2).ok());
  ASSERT_TRUE(r.Str(&s).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d1, 0.1);
  EXPECT_TRUE(d2 == 0.0 && std::signbit(d2));
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WirePrimitivesTest, TruncatedReadsAreErrorsNotCrashes) {
  wire::Writer w;
  w.U32(7);
  {
    wire::Reader r(w.data());
    uint64_t v;
    EXPECT_FALSE(r.U64(&v).ok());  // only 4 bytes available
  }
  {
    // String length prefix claims more bytes than the buffer holds.
    wire::Writer lying;
    lying.U32(1000);
    lying.Bytes("xy", 2);
    wire::Reader r(lying.data());
    std::string s;
    EXPECT_FALSE(r.Str(&s).ok());
  }
}

// --------------------------------------------------------------- frames --

TEST(WireFrameTest, RoundTrip) {
  const std::string payload = "some payload bytes";
  std::string frame = wire::EncodeFrame(wire::kUpdateBatch, payload);
  uint8_t type;
  std::string_view got;
  ASSERT_TRUE(wire::DecodeFrame(frame, &type, &got).ok());
  EXPECT_EQ(type, wire::kUpdateBatch);
  EXPECT_EQ(got, payload);
}

TEST(WireFrameTest, EveryFlippedByteIsRejected) {
  std::string frame = wire::EncodeFrame(wire::kSketchState, "payload-data");
  for (size_t pos = 0; pos < frame.size(); ++pos) {
    std::string corrupted = frame;
    corrupted[pos] = char(corrupted[pos] ^ 0x40);
    uint8_t type;
    std::string_view payload;
    EXPECT_FALSE(wire::DecodeFrame(corrupted, &type, &payload).ok())
        << "flip at byte " << pos << " went undetected";
  }
}

TEST(WireFrameTest, TruncatedFrameIsRejected) {
  std::string frame = wire::EncodeFrame(wire::kSketchState, "payload-data");
  for (size_t len = 0; len < frame.size(); ++len) {
    uint8_t type;
    std::string_view payload;
    EXPECT_FALSE(
        wire::DecodeFrame(std::string_view(frame).substr(0, len), &type,
                          &payload)
            .ok())
        << "prefix of length " << len << " accepted";
  }
}

TEST(WireFrameTest, WrongFormatVersionIsRejectedWithVersionError) {
  std::string frame = wire::EncodeFrame(wire::kSketchState, "payload");
  // Patch the version byte AND recompute the checksum, so the version check
  // (not the CRC) is what rejects the frame.
  frame[4] = char(wire::kFormatVersion + 1);
  const size_t body_len = frame.size() - 8;
  uint32_t crc = wire::Crc32(frame.data() + 4, body_len);
  for (int i = 0; i < 4; ++i) {
    frame[frame.size() - 4 + size_t(i)] = char(crc >> (8 * i));
  }
  uint8_t type;
  std::string_view payload;
  Status s = wire::DecodeFrame(frame, &type, &payload);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.ToString();
}

TEST(WireCodecTest, UpdateBatchRoundTrip) {
  std::vector<stream::TurnstileUpdate> in{{1, 5}, {42, -3}, {7, 0}};
  wire::Writer w;
  wire::EncodeUpdates(in.data(), in.size(), &w);
  wire::Reader r(w.data());
  std::vector<stream::TurnstileUpdate> out;
  ASSERT_TRUE(wire::DecodeUpdates(&r, &out).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].item, in[i].item);
    EXPECT_EQ(out[i].delta, in[i].delta);
  }
}

TEST(WireCodecTest, StatusRoundTrip) {
  for (const Status& in :
       {Status::OK(), Status::InvalidArgument("bad arg"),
        Status::ResourceExhausted("valve"), Status::Unimplemented("nope")}) {
    wire::Writer w;
    wire::EncodeStatus(in, &w);
    wire::Reader r(w.data());
    Status out;
    ASSERT_TRUE(wire::DecodeStatus(&r, &out).ok());
    EXPECT_EQ(out.code(), in.code());
    EXPECT_EQ(out.message(), in.message());
  }
}

TEST(WireCodecTest, SummaryRoundTrip) {
  SketchSummary in;
  in.sketch = "misra_gries";
  in.has_scalar = true;
  in.scalar = 3.25;
  in.updates = 99;
  in.items = {{5, 10.0}, {3, 7.5}, {9, 7.5}};
  in.SortItems();
  wire::Writer w;
  wire::EncodeSummary(in, &w);
  wire::Reader r(w.data());
  SketchSummary out;
  ASSERT_TRUE(wire::DecodeSummary(&r, &out).ok());
  EXPECT_EQ(out.sketch, in.sketch);
  EXPECT_EQ(out.has_scalar, in.has_scalar);
  EXPECT_EQ(out.scalar, in.scalar);
  EXPECT_EQ(out.updates, in.updates);
  ASSERT_EQ(out.items.size(), in.items.size());
  for (size_t i = 0; i < in.items.size(); ++i) {
    EXPECT_EQ(out.items[i].item, in.items[i].item);
    EXPECT_EQ(out.items[i].estimate, in.items[i].estimate);
  }
  // The rebuilt by-item index answers point lookups like the original.
  for (uint64_t probe : {3u, 5u, 9u, 1u}) {
    EXPECT_EQ(out.Estimate(probe), in.Estimate(probe));
  }
}

// ---------------------------------------------- sketch state round trips --

SketchConfig WireTestConfig(uint64_t universe, uint64_t seed) {
  SketchConfig cfg;
  cfg.universe = universe;
  cfg.seed = seed;
  cfg.shard_seed = seed * 31 + 7;
  cfg.rank.n = 16;
  cfg.rank.k = 4;
  return cfg;
}

std::unique_ptr<Sketch> MakeSketch(const std::string& name,
                                   const SketchConfig& cfg) {
  auto sketch = SketchRegistry::Global().Create(name, cfg);
  EXPECT_TRUE(sketch.ok()) << sketch.status().ToString();
  return std::move(sketch).value();
}

void ApplyStream(Sketch* sketch, const stream::TurnstileStream& s,
                 size_t batch = 512) {
  for (size_t off = 0; off < s.size(); off += batch) {
    UpdateBatch b;
    b.data = s.data() + off;
    b.size = std::min(batch, s.size() - off);
    ASSERT_TRUE(sketch->ApplyBatch(b).ok());
  }
}

void ExpectSummariesIdentical(const SketchSummary& got,
                              const SketchSummary& want,
                              const std::string& context) {
  EXPECT_EQ(got.sketch, want.sketch) << context;
  EXPECT_EQ(got.has_scalar, want.has_scalar) << context;
  EXPECT_EQ(got.scalar, want.scalar) << context;
  EXPECT_EQ(got.updates, want.updates) << context;
  ASSERT_EQ(got.items.size(), want.items.size()) << context;
  for (size_t i = 0; i < got.items.size(); ++i) {
    EXPECT_EQ(got.items[i].item, want.items[i].item) << context;
    EXPECT_EQ(got.items[i].estimate, want.items[i].estimate) << context;
  }
}

/// serialize → deserialize → Summary() must be bit-identical to the
/// original's Summary() for every family, on every workload shape.
void CheckRoundTrip(const std::string& name, const SketchConfig& cfg,
                    const stream::TurnstileStream& s,
                    const std::string& context) {
  auto original = MakeSketch(name, cfg);
  ApplyStream(original.get(), s);

  auto frame = SerializeSketch(*original);
  ASSERT_TRUE(frame.ok()) << name << ": " << frame.status().ToString();
  auto restored = DeserializeSketch(name, cfg, frame.value());
  ASSERT_TRUE(restored.ok()) << name << ": " << restored.status().ToString();

  ExpectSummariesIdentical(restored.value()->Summary(), original->Summary(),
                           name + " on " + context);

  // A restored sketch must also merge like the original's snapshot clone:
  // fold both into fresh accumulators and compare those too.
  auto via_original = MakeSketch(name, cfg);
  auto via_restored = MakeSketch(name, cfg);
  ASSERT_TRUE(via_original->MergeFrom(*original).ok()) << name;
  ASSERT_TRUE(via_restored->MergeFrom(*restored.value()).ok()) << name;
  ExpectSummariesIdentical(via_restored->Summary(), via_original->Summary(),
                           name + " merged, on " + context);
}

stream::TurnstileStream ZipfTurnstile(uint64_t universe, size_t n,
                                      uint64_t seed) {
  wbs::RandomTape tape(seed);
  tape.set_logging(false);
  auto items = stream::ZipfStream(universe, n, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  return s;
}

TEST(SketchStateRoundTripTest, AllFamiliesOnZipf) {
  const SketchConfig cfg = WireTestConfig(1 << 12, 17);
  auto zipf = ZipfTurnstile(1 << 12, 20000, 51);
  for (const char* name :
       {"misra_gries", "ams_f2", "sis_l0", "robust_hh", "crhf_hh"}) {
    CheckRoundTrip(name, cfg, zipf, "zipf");
  }
}

TEST(SketchStateRoundTripTest, AllFamiliesOnPlantedHeavyHitters) {
  const uint64_t universe = 1 << 14;
  const SketchConfig cfg = WireTestConfig(universe, 23);
  wbs::RandomTape tape(52);
  tape.set_logging(false);
  std::vector<uint64_t> planted;
  auto items = stream::PlantedHeavyHitterStream(universe, 20000, 3, 0.2,
                                                &tape, &planted);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  for (const char* name :
       {"misra_gries", "ams_f2", "sis_l0", "robust_hh", "crhf_hh"}) {
    CheckRoundTrip(name, cfg, s, "planted");
  }
}

TEST(SketchStateRoundTripTest, TurnstileFamiliesOnChurn) {
  const uint64_t universe = 1 << 12;
  const SketchConfig cfg = WireTestConfig(universe, 29);
  wbs::RandomTape tape(53);
  tape.set_logging(false);
  auto s = stream::InsertDeleteChurnStream(universe, 120, 2500, &tape);
  for (const char* name : {"ams_f2", "sis_l0"}) {
    CheckRoundTrip(name, cfg, s, "churn");
  }
}

TEST(SketchStateRoundTripTest, RankDecision) {
  SketchConfig cfg = WireTestConfig(1 << 10, 31);
  stream::TurnstileStream diag;
  for (size_t i = 0; i < cfg.rank.k; ++i) {
    diag.push_back({uint64_t(i) * cfg.rank.n + i, 1});
  }
  diag.push_back({3, 5});
  diag.push_back({3, -5});  // cancelling turnstile pair
  CheckRoundTrip("rank_decision", cfg, diag, "diagonal");
}

TEST(SketchStateRoundTripTest, FreshSketchRoundTrips) {
  const SketchConfig cfg = WireTestConfig(1 << 10, 37);
  for (const char* name : {"misra_gries", "ams_f2", "sis_l0",
                           "rank_decision", "robust_hh", "crhf_hh"}) {
    CheckRoundTrip(name, cfg, {}, "empty stream");
  }
}

// ------------------------------------------------- hostile state inputs --

TEST(SketchStateValidationTest, CorruptedByteIsRejectedForEveryFamily) {
  const SketchConfig cfg = WireTestConfig(1 << 12, 41);
  auto zipf = ZipfTurnstile(1 << 12, 4000, 54);
  for (const char* name : {"misra_gries", "ams_f2", "sis_l0", "robust_hh"}) {
    auto sketch = MakeSketch(name, cfg);
    ApplyStream(sketch.get(), zipf);
    auto frame = SerializeSketch(*sketch);
    ASSERT_TRUE(frame.ok()) << name;
    std::string corrupted = frame.value();
    // Flip a byte in the middle of the state payload: the frame checksum
    // must catch it before any family-level decoding runs.
    corrupted[corrupted.size() / 2] ^= 0x10;
    auto restored = DeserializeSketch(name, cfg, corrupted);
    EXPECT_FALSE(restored.ok()) << name;
  }
}

TEST(SketchStateValidationTest, TruncatedStateIsRejected) {
  const SketchConfig cfg = WireTestConfig(1 << 12, 43);
  auto zipf = ZipfTurnstile(1 << 12, 4000, 55);
  auto sketch = MakeSketch("ams_f2", cfg);
  ApplyStream(sketch.get(), zipf);
  auto frame = SerializeSketch(*sketch);
  ASSERT_TRUE(frame.ok());
  for (size_t keep : {size_t(0), size_t(6), frame.value().size() / 2,
                      frame.value().size() - 1}) {
    auto restored =
        DeserializeSketch("ams_f2", cfg, frame.value().substr(0, keep));
    EXPECT_FALSE(restored.ok()) << "kept " << keep << " bytes";
  }
}

TEST(SketchStateValidationTest, ForeignSketchNameIsRejected) {
  const SketchConfig cfg = WireTestConfig(1 << 12, 47);
  auto ams = MakeSketch("ams_f2", cfg);
  auto frame = SerializeSketch(*ams);
  ASSERT_TRUE(frame.ok());
  // ams_f2 state offered to a misra_gries instance: name check fires.
  auto restored = DeserializeSketch("misra_gries", cfg, frame.value());
  EXPECT_FALSE(restored.ok());
}

TEST(SketchStateValidationTest, MismatchedSharedRandomnessIsRejected) {
  const SketchConfig cfg_a = WireTestConfig(1 << 12, 49);
  SketchConfig cfg_b = cfg_a;
  cfg_b.seed = cfg_a.seed + 1;  // different sign matrix / oracle
  auto zipf = ZipfTurnstile(1 << 12, 2000, 56);
  for (const char* name : {"ams_f2", "sis_l0", "rank_decision"}) {
    auto sketch = MakeSketch(name, cfg_a);
    if (std::string(name) != "rank_decision") {
      ApplyStream(sketch.get(), zipf);
    }
    auto frame = SerializeSketch(*sketch);
    ASSERT_TRUE(frame.ok()) << name;
    auto restored = DeserializeSketch(name, cfg_b, frame.value());
    EXPECT_FALSE(restored.ok())
        << name << ": state from a different seed was accepted";
  }
}

TEST(SketchStateValidationTest, WrongStateVersionByteIsRejected) {
  const SketchConfig cfg = WireTestConfig(1 << 12, 53);
  auto sketch = MakeSketch("ams_f2", cfg);
  auto frame = SerializeSketch(*sketch);
  ASSERT_TRUE(frame.ok());
  // Decode the frame, bump the per-family state-version byte (right after
  // the name), and re-frame so the checksum stays valid.
  uint8_t type;
  std::string_view payload;
  ASSERT_TRUE(wire::DecodeFrame(frame.value(), &type, &payload).ok());
  std::string patched(payload);
  const size_t version_pos = 4 + std::string("ams_f2").size();
  ASSERT_LT(version_pos, patched.size());
  patched[version_pos] = char(patched[version_pos] + 1);
  std::string reframed = wire::EncodeFrame(wire::kSketchState, patched);
  auto restored = DeserializeSketch("ams_f2", cfg, reframed);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("version"), std::string::npos)
      << restored.status().ToString();
}

}  // namespace
}  // namespace wbs::engine
