// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The typed multi-producer engine API (engine::Client): handle resolution,
// typed query results vs the legacy SketchSummary path (bit-identical on
// Zipf, planted-heavy-hitter and churn workloads), query-kind mismatch
// errors, multi-producer submission matching a single-threaded reference
// bit-for-bit, and IngestTicket Wait/TryWait ordering semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/backend.h"
#include "engine/client.h"
#include "engine/registry.h"
#include "engine/remote_backend.h"
#include "engine/sharded_ingestor.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

#include "engine_test_util.h"

namespace wbs::engine {
namespace {

SketchConfig TestConfig(uint64_t universe, uint64_t seed) {
  return SketchConfig{}.WithUniverse(universe).WithSeed(seed);
}

// ----------------------------------------------------------------- handles --

TEST(ClientHandleTest, ResolvesConfiguredSketches) {
  auto client = MakeClient({"ams_f2", "misra_gries"}, TestConfig(1 << 10, 1),
                           2, 0);
  auto f2 = client->Handle("ams_f2");
  auto mg = client->Handle("misra_gries");
  ASSERT_TRUE(f2.ok() && mg.ok());
  EXPECT_TRUE(f2.value().valid());
  EXPECT_EQ(f2.value().family(), SketchFamily::kScalarEstimate);
  EXPECT_EQ(mg.value().family(), SketchFamily::kHeavyHitter);
}

TEST(ClientHandleTest, UnknownSketchIsNotFound) {
  auto client = MakeClient({"ams_f2"}, TestConfig(1 << 10, 1), 2, 0);
  auto handle = client->Handle("sis_l0");  // registered, but not configured
  EXPECT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), Status::Code::kNotFound);
}

TEST(ClientHandleTest, DefaultHandleRejected) {
  auto client = MakeClient({"ams_f2"}, TestConfig(1 << 10, 1), 2, 0);
  SketchHandle none;
  EXPECT_FALSE(none.valid());
  auto r = client->QueryScalar(none);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(ClientHandleTest, ForeignHandleRejected) {
  auto a = MakeClient({"ams_f2"}, TestConfig(1 << 10, 1), 2, 0);
  auto b = MakeClient({"ams_f2"}, TestConfig(1 << 10, 1), 2, 0);
  auto handle = a->Handle("ams_f2");
  ASSERT_TRUE(handle.ok());
  auto r = b->QueryScalar(handle.value());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

// ---------------------------------------------------------- kind mismatch --

TEST(ClientTypedQueryTest, KindMismatchIsInvalidArgument) {
  auto client = MakeClient(
      {"misra_gries", "ams_f2", "sis_l0", "rank_decision"},
      TestConfig(1 << 10, 3), 2, 0);
  auto mg = client->Handle("misra_gries").value();
  auto f2 = client->Handle("ams_f2").value();
  auto l0 = client->Handle("sis_l0").value();
  auto rank = client->Handle("rank_decision").value();

  // Heavy-hitter sketches answer point/top-k, nothing else.
  EXPECT_EQ(client->QueryScalar(mg).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(client->QueryRank(mg).status().code(),
            Status::Code::kInvalidArgument);
  // Scalar sketches answer scalar estimates, nothing else.
  EXPECT_EQ(client->QueryPoint(f2, 1).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(client->QueryTopK(l0, 5).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(client->QueryRank(f2).status().code(),
            Status::Code::kInvalidArgument);
  // Rank sketches answer the verdict, nothing else.
  EXPECT_EQ(client->QueryScalar(rank).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(client->QueryPoint(rank, 0).status().code(),
            Status::Code::kInvalidArgument);
  // The matching kinds all succeed.
  EXPECT_TRUE(client->QueryPoint(mg, 1).ok());
  EXPECT_TRUE(client->QueryTopK(mg, 5).ok());
  EXPECT_TRUE(client->QueryScalar(f2).ok());
  EXPECT_TRUE(client->QueryScalar(l0).ok());
  EXPECT_TRUE(client->QueryRank(rank).ok());
  // RawSummary (the legacy escape hatch) works for every family.
  EXPECT_TRUE(client->RawSummary(mg).ok());
  EXPECT_TRUE(client->RawSummary(rank).ok());
}

TEST(ClientTypedQueryTest, TopKRequiresPositiveK) {
  auto client = MakeClient({"misra_gries"}, TestConfig(1 << 10, 3), 2, 0);
  auto mg = client->Handle("misra_gries").value();
  EXPECT_EQ(client->QueryTopK(mg, 0).status().code(),
            Status::Code::kInvalidArgument);
}

// ---------------------------------------- typed vs untyped bit-identity --

// The typed results must be projections of exactly the answer the untyped
// string-keyed SketchSummary surface produces for the same options and
// stream (RawSummary on an independently-run engine stands in for the
// deleted Driver shim, which was a thin wrapper over the same path) —
// scalar and update counts compare with ==, candidate lists element-wise.
void CheckTypedMatchesLegacy(const stream::TurnstileStream& s,
                             const SketchConfig& cfg,
                             const std::vector<std::string>& sketches) {
  auto reference = MakeClient(sketches, cfg, 4, 2);
  ASSERT_TRUE(Replay(reference.get(), s).ok());
  ASSERT_TRUE(reference->Finish().ok());

  auto client = MakeClient(sketches, cfg, 4, 2);
  ASSERT_TRUE(Replay(client.get(), s).ok());
  ASSERT_TRUE(client->Finish().ok());

  for (const std::string& name : sketches) {
    auto ref_handle = reference->Handle(name);
    ASSERT_TRUE(ref_handle.ok()) << name;
    auto legacy = reference->RawSummary(ref_handle.value());
    ASSERT_TRUE(legacy.ok()) << name;
    auto handle = client->Handle(name);
    ASSERT_TRUE(handle.ok()) << name;

    // RawSummary: the full legacy answer, bit-identical.
    auto raw = client->RawSummary(handle.value());
    ASSERT_TRUE(raw.ok()) << name;
    EXPECT_EQ(raw.value().scalar, legacy.value().scalar) << name;
    EXPECT_EQ(raw.value().updates, legacy.value().updates) << name;
    ASSERT_EQ(raw.value().items.size(), legacy.value().items.size()) << name;
    for (size_t i = 0; i < raw.value().items.size(); ++i) {
      EXPECT_EQ(raw.value().items[i].item, legacy.value().items[i].item);
      EXPECT_EQ(raw.value().items[i].estimate,
                legacy.value().items[i].estimate);
    }

    // Typed projections agree with the legacy fields exactly.
    switch (handle.value().family()) {
      case SketchFamily::kScalarEstimate: {
        auto scalar = client->QueryScalar(handle.value());
        ASSERT_TRUE(scalar.ok()) << name;
        EXPECT_EQ(scalar.value().value, legacy.value().scalar) << name;
        EXPECT_EQ(scalar.value().updates, legacy.value().updates) << name;
        break;
      }
      case SketchFamily::kRankVerdict: {
        auto verdict = client->QueryRank(handle.value());
        ASSERT_TRUE(verdict.ok()) << name;
        EXPECT_EQ(verdict.value().rank_at_least_k,
                  legacy.value().scalar != 0) << name;
        break;
      }
      case SketchFamily::kHeavyHitter: {
        auto topk = client->QueryTopK(handle.value(),
                                      legacy.value().items.size() + 10);
        ASSERT_TRUE(topk.ok()) << name;
        ASSERT_EQ(topk.value().items.size(), legacy.value().items.size());
        for (size_t i = 0; i < topk.value().items.size(); ++i) {
          EXPECT_EQ(topk.value().items[i].item, legacy.value().items[i].item);
          EXPECT_EQ(topk.value().items[i].estimate,
                    legacy.value().items[i].estimate);
        }
        for (const auto& wi : legacy.value().items) {
          auto point = client->QueryPoint(handle.value(), wi.item);
          ASSERT_TRUE(point.ok());
          EXPECT_EQ(point.value().estimate, wi.estimate) << name;
        }
        break;
      }
      case SketchFamily::kGeneric:
        break;
    }
  }
}

TEST(ClientTypedQueryTest, MatchesLegacyOnZipf) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(11);
  auto items = stream::ZipfStream(universe, 30000, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  CheckTypedMatchesLegacy(s, TestConfig(universe, 7),
                          {"misra_gries", "ams_f2", "sis_l0"});
}

TEST(ClientTypedQueryTest, MatchesLegacyOnPlantedHeavyHitters) {
  const uint64_t universe = 1 << 16;
  wbs::RandomTape tape(12);
  std::vector<uint64_t> planted;
  auto items = stream::PlantedHeavyHitterStream(universe, 30000, 3, 0.2,
                                                &tape, &planted);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  CheckTypedMatchesLegacy(s, TestConfig(universe, 8),
                          {"misra_gries", "robust_hh", "crhf_hh"});
}

TEST(ClientTypedQueryTest, MatchesLegacyOnChurn) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(13);
  auto s = stream::InsertDeleteChurnStream(universe, 120, 2500, &tape);
  CheckTypedMatchesLegacy(s, TestConfig(universe, 9), {"ams_f2", "sis_l0"});
}

TEST(ClientTypedQueryTest, RankVerdictMatchesLegacy) {
  SketchConfig cfg = TestConfig(1, 17);
  cfg.rank.n = 32;
  cfg.rank.k = 8;
  stream::TurnstileStream diag;
  for (size_t i = 0; i < 8; ++i) {
    diag.push_back({uint64_t(i) * cfg.rank.n + i, 1});
  }
  CheckTypedMatchesLegacy(diag, cfg, {"rank_decision"});
}

// ---------------------------------------------------------- multi-producer --

// N producer threads split the stream into interleaved slices and submit
// concurrently. The engine's linear families (ams_f2, sis_l0) and
// eviction-free Misra-Gries are order-insensitive, so the merged answers
// must equal a single-threaded reference run bit-for-bit no matter how the
// producers' batches interleave. Runs against a caller-chosen shard backend
// so the guarantee is pinned on BOTH the in-process and the loopback-remote
// paths (the ShardBackend boundary must not change any answer).
void CheckConcurrentProducersMatchSingleThreadedRun(
    const BackendFactory& backend) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(21);
  auto items = stream::ZipfStream(universe, 60000, 1.1, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});

  SketchConfig cfg = TestConfig(universe, 99);
  cfg.misra_gries.counters = 8192;  // > universe: eviction-free, order-free
  const std::vector<std::string> sketches = {"misra_gries", "ams_f2",
                                             "sis_l0"};

  auto reference = MakeClient(sketches, cfg, 4, 0, backend);
  ASSERT_TRUE(Replay(reference.get(), s).ok());
  ASSERT_TRUE(reference->Finish().ok());

  for (size_t producers : {2u, 4u}) {
    auto client = MakeClient(sketches, cfg, 4, 2, backend);
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    const size_t batch = 512;
    for (size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        // Producer p owns every producers-th batch of the stream.
        for (size_t off = p * batch; off < s.size();
             off += producers * batch) {
          const size_t n = std::min(batch, s.size() - off);
          auto t = client->Submit(s.data() + off, n);
          if (!t.ok()) {
            failed.store(true);
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_FALSE(failed.load());
    ASSERT_TRUE(client->Finish().ok());
    EXPECT_EQ(client->updates_submitted(), uint64_t(s.size()));

    for (const std::string& name : sketches) {
      auto handle = client->Handle(name);
      auto want_handle = reference->Handle(name);
      ASSERT_TRUE(handle.ok() && want_handle.ok());
      auto got = client->RawSummary(handle.value());
      auto want = reference->RawSummary(want_handle.value());
      ASSERT_TRUE(got.ok() && want.ok()) << name;
      EXPECT_EQ(got.value().scalar, want.value().scalar)
          << name << " with " << producers << " producers";
      EXPECT_EQ(got.value().updates, want.value().updates) << name;
      ASSERT_EQ(got.value().items.size(), want.value().items.size()) << name;
      for (size_t i = 0; i < got.value().items.size(); ++i) {
        EXPECT_EQ(got.value().items[i].item, want.value().items[i].item);
        EXPECT_EQ(got.value().items[i].estimate,
                  want.value().items[i].estimate);
      }
    }
  }
}

TEST(ClientMultiProducerTest, ConcurrentProducersMatchOnInProcessBackend) {
  CheckConcurrentProducersMatchSingleThreadedRun(InProcessBackendFactory());
}

TEST(ClientMultiProducerTest, ConcurrentProducersMatchOnLoopbackBackend) {
  CheckConcurrentProducersMatchSingleThreadedRun(LoopbackBackendFactory());
}

// Producers racing with a typed-query thread: no errors, and the final
// answer still matches a quiescent reference (TSan hunts for races here).
TEST(ClientMultiProducerTest, TypedQueriesRaceProducersSafely) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(23);
  auto items = stream::ZipfStream(universe, 60000, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});

  SketchConfig cfg = TestConfig(universe, 101);
  auto client = MakeClient({"ams_f2", "sis_l0"}, cfg, 4, 2);
  auto f2 = client->Handle("ams_f2").value();
  auto l0 = client->Handle("sis_l0").value();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> query_errors{0};
  std::thread querier([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!client->QueryScalar(f2).ok()) ++query_errors;
      if (!client->QueryScalar(l0).ok()) ++query_errors;
    }
  });

  std::vector<std::thread> producers;
  for (size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      const size_t batch = 512;
      for (size_t off = p * batch; off < s.size(); off += 2 * batch) {
        auto t = client->Submit(s.data() + off,
                                std::min(batch, s.size() - off));
        ASSERT_TRUE(t.ok());
      }
    });
  }
  for (auto& t : producers) t.join();
  // Producers only ticketed the batches; keep querying through the drain.
  ASSERT_TRUE(client->Flush().ok());
  stop.store(true, std::memory_order_relaxed);
  querier.join();
  ASSERT_TRUE(client->Finish().ok());
  EXPECT_EQ(query_errors.load(), 0u);

  auto reference = MakeClient({"ams_f2", "sis_l0"}, cfg, 4, 0);
  ASSERT_TRUE(Replay(reference.get(), s).ok());
  ASSERT_TRUE(reference->Finish().ok());
  auto got = client->QueryScalar(f2);
  auto want = reference->QueryScalar(reference->Handle("ams_f2").value());
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got.value().value, want.value().value);
  EXPECT_EQ(got.value().updates, uint64_t(s.size()));
}

// ------------------------------------------------------------------ tickets --

TEST(IngestTicketTest, SequenceNumbersIncreaseAndWaitIsPrefixMonotone) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(31);
  auto items = stream::ZipfStream(universe, 20000, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});

  auto client = MakeClient({"ams_f2"}, TestConfig(universe, 5), 4, 2);
  std::vector<IngestTicket> tickets;
  const size_t batch = 1024;
  for (size_t off = 0; off < s.size(); off += batch) {
    auto t = client->Submit(s.data() + off, std::min(batch, s.size() - off));
    ASSERT_TRUE(t.ok());
    tickets.push_back(t.value());
  }
  for (size_t i = 1; i < tickets.size(); ++i) {
    EXPECT_GT(tickets[i].seq, tickets[i - 1].seq);
  }

  // Waiting on a mid-stream ticket completes every earlier one too.
  const size_t mid = tickets.size() / 2;
  ASSERT_TRUE(client->Wait(tickets[mid]).ok());
  for (size_t i = 0; i <= mid; ++i) {
    auto done = client->TryWait(tickets[i]);
    ASSERT_TRUE(done.ok());
    EXPECT_TRUE(done.value()) << "ticket " << i << " after Wait(" << mid << ")";
  }

  ASSERT_TRUE(client->Wait(tickets.back()).ok());
  for (const auto& t : tickets) {
    auto done = client->TryWait(t);
    ASSERT_TRUE(done.ok());
    EXPECT_TRUE(done.value());
  }
  // Everything waited on is ingested: the snapshot query covers the full
  // stream after a Flush (publishes throttled snapshots).
  ASSERT_TRUE(client->Flush().ok());
  auto f2 = client->Handle("ams_f2").value();
  auto scalar = client->QueryScalar(f2);
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(scalar.value().updates, uint64_t(s.size()));
  ASSERT_TRUE(client->Finish().ok());
}

TEST(IngestTicketTest, EmptySubmitReturnsCompletedTicket) {
  auto client = MakeClient({"ams_f2"}, TestConfig(1 << 10, 5), 2, 1);
  auto t = client->Submit(nullptr, 0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().seq, 0u);
  auto done = client->TryWait(t.value());
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done.value());
  EXPECT_TRUE(client->Wait(t.value()).ok());
}

TEST(IngestTicketTest, InlineModeTicketsCompleteSynchronously) {
  auto client = MakeClient({"ams_f2"}, TestConfig(1 << 10, 5), 2, 0);
  stream::TurnstileStream s{{1, 1}, {2, 2}, {3, 1}};
  auto t = client->Submit(s);
  ASSERT_TRUE(t.ok());
  auto done = client->TryWait(t.value());
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done.value());  // applied before Submit returned
}

TEST(IngestTicketTest, WaitSurfacesIngestErrors) {
  // universe 16: item 1<<20 fails inside the worker; the ticket still
  // completes (workers drain) and Wait hands the pipeline error back.
  auto client = MakeClient({"ams_f2"}, TestConfig(16, 1), 2, 2);
  stream::TurnstileStream bad{{uint64_t{1} << 20, 1}};
  auto t = client->Submit(bad);
  ASSERT_TRUE(t.ok());  // submission itself succeeds; the failure is async
  EXPECT_FALSE(client->Wait(t.value()).ok());
  // Once drained, TryWait reports the error too.
  auto done = client->TryWait(t.value());
  EXPECT_FALSE(done.ok());
  // And so does any later submission attempt.
  stream::TurnstileStream good{{1, 1}};
  EXPECT_FALSE(client->Submit(good).ok());
}

// ------------------------------------------------------------ point lookup --

TEST(SketchSummaryTest, IndexedEstimateMatchesLinearScan) {
  SketchSummary summary;
  wbs::RandomTape tape(41);
  for (int i = 0; i < 200; ++i) {
    summary.items.push_back(
        {tape.NextWord() % 5000, double(tape.NextWord() % 1000 + 1)});
  }
  // Deduplicate items (candidate lists never repeat an item).
  std::sort(summary.items.begin(), summary.items.end(),
            [](const hh::WeightedItem& a, const hh::WeightedItem& b) {
              return a.item < b.item;
            });
  summary.items.erase(
      std::unique(summary.items.begin(), summary.items.end(),
                  [](const hh::WeightedItem& a, const hh::WeightedItem& b) {
                    return a.item == b.item;
                  }),
      summary.items.end());
  summary.SortItems();

  // Estimate-descending order (the TopK contract) survives SortItems...
  for (size_t i = 1; i < summary.items.size(); ++i) {
    EXPECT_GE(summary.items[i - 1].estimate, summary.items[i].estimate);
  }
  // ...and the indexed lookup agrees with a hand-rolled linear scan for
  // present and absent items alike.
  for (uint64_t probe = 0; probe < 5000; probe += 7) {
    double want = 0;
    for (const auto& wi : summary.items) {
      if (wi.item == probe) want = wi.estimate;
    }
    EXPECT_EQ(summary.Estimate(probe), want) << probe;
  }
}

}  // namespace
}  // namespace wbs::engine
