// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Workload generators and the exact ground-truth oracle.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"
#include "strings/pattern_match.h"

namespace wbs::stream {
namespace {

TEST(FrequencyOracleTest, BasicCounts) {
  FrequencyOracle o(100);
  o.Add(5);
  o.Add(5);
  o.Add(7, 3);
  EXPECT_EQ(o.Frequency(5), 2);
  EXPECT_EQ(o.Frequency(7), 3);
  EXPECT_EQ(o.Frequency(9), 0);
  EXPECT_EQ(o.L1(), 5u);
  EXPECT_EQ(o.L0(), 2u);
}

TEST(FrequencyOracleTest, DeletionsShrinkSupport) {
  FrequencyOracle o(100);
  o.Add(1, 4);
  o.Add(1, -4);
  EXPECT_EQ(o.L0(), 0u);
  EXPECT_EQ(o.Frequency(1), 0);
}

// The update-accounting invariant: total_updates() counts effective
// (nonzero-delta) updates exactly once each — a cancelling turnstile delete
// is an update, a delta == 0 call is not — and element-wise Add() agrees
// with AddStream() on every stream.
TEST(FrequencyOracleTest, UpdateAccountingInvariant) {
  FrequencyOracle o(100);
  o.Add(1, 0);  // no-op: must not count
  EXPECT_EQ(o.total_updates(), 0u);
  o.Add(1, 4);
  o.Add(1, -4);  // cancelling delete: a real update, counts
  EXPECT_EQ(o.total_updates(), 2u);
  EXPECT_EQ(o.L0(), 0u);
  o.Add(2, 0);  // no-op on existing-free coordinate
  EXPECT_EQ(o.total_updates(), 2u);
}

TEST(FrequencyOracleTest, AddStreamConsistentWithElementwiseAdd) {
  TurnstileStream s = {{1, 3}, {2, 0}, {1, -3}, {4, 7}, {9, 0}, {4, -2}};
  FrequencyOracle via_stream(100), via_add(100);
  via_stream.AddStream(s);
  for (const auto& u : s) via_add.Add(u.item, u.delta);
  EXPECT_EQ(via_stream.total_updates(), via_add.total_updates());
  EXPECT_EQ(via_stream.total_updates(), 4u);  // two zero-delta no-ops
  EXPECT_EQ(via_stream.frequencies(), via_add.frequencies());

  ItemStream items = {{5}, {5}, {6}};
  FrequencyOracle o(100);
  o.AddStream(items);
  EXPECT_EQ(o.total_updates(), items.size());
}

TEST(FrequencyOracleTest, FpMoments) {
  FrequencyOracle o(10);
  o.Add(0, 3);
  o.Add(1, 4);
  EXPECT_DOUBLE_EQ(o.Fp(0), 2.0);
  EXPECT_DOUBLE_EQ(o.Fp(1), 7.0);
  EXPECT_DOUBLE_EQ(o.Fp(2), 25.0);
}

TEST(FrequencyOracleTest, ItemsAboveThreshold) {
  FrequencyOracle o(10);
  o.Add(0, 10);
  o.Add(1, 5);
  o.Add(2, 1);
  auto heavy = o.ItemsAbove(4.0);
  std::sort(heavy.begin(), heavy.end());
  EXPECT_EQ(heavy, (std::vector<uint64_t>{0, 1}));
}

TEST(FrequencyOracleTest, InnerProduct) {
  FrequencyOracle f(10), g(10);
  f.Add(0, 2);
  f.Add(1, 3);
  g.Add(1, 4);
  g.Add(2, 5);
  EXPECT_EQ(f.InnerProduct(g), 12);
  EXPECT_EQ(g.InnerProduct(f), 12);
}

TEST(WorkloadTest, UniformStreamLengthAndRange) {
  wbs::RandomTape tape(1);
  ItemStream s = UniformStream(50, 1000, &tape);
  EXPECT_EQ(s.size(), 1000u);
  for (const auto& u : s) EXPECT_LT(u.item, 50u);
}

TEST(WorkloadTest, ZipfStreamSkewed) {
  wbs::RandomTape tape(2);
  ItemStream s = ZipfStream(1 << 16, 20000, 1.2, &tape);
  FrequencyOracle o(1 << 16);
  o.AddStream(s);
  // The most frequent item should dominate: >= 5% of the stream under
  // alpha = 1.2.
  uint64_t max_f = 0;
  for (const auto& [k, v] : o.frequencies()) {
    max_f = std::max(max_f, uint64_t(v));
  }
  EXPECT_GE(max_f, 1000u);
}

TEST(WorkloadTest, PlantedHeavyHittersAreHeavy) {
  wbs::RandomTape tape(3);
  std::vector<uint64_t> planted;
  const uint64_t m = 10000;
  ItemStream s = PlantedHeavyHitterStream(1 << 20, m, 4, 0.1, &tape, &planted);
  EXPECT_EQ(s.size(), m);
  EXPECT_EQ(planted.size(), 4u);
  FrequencyOracle o(1 << 20);
  o.AddStream(s);
  for (uint64_t id : planted) {
    EXPECT_GE(o.Frequency(id), int64_t(m / 10)) << id;
  }
}

TEST(WorkloadTest, PlantedIdsDistinct) {
  wbs::RandomTape tape(4);
  std::vector<uint64_t> planted;
  PlantedHeavyHitterStream(1 << 12, 5000, 6, 0.05, &tape, &planted);
  std::sort(planted.begin(), planted.end());
  EXPECT_EQ(std::unique(planted.begin(), planted.end()), planted.end());
}

TEST(WorkloadTest, ChurnStreamLeavesExactSupport) {
  wbs::RandomTape tape(5);
  TurnstileStream s = InsertDeleteChurnStream(1 << 20, 37, 100, &tape);
  FrequencyOracle o(1 << 20);
  o.AddStream(s);
  EXPECT_EQ(o.L0(), 37u);
}

TEST(WorkloadTest, ChurnStreamDeltasBalanced) {
  wbs::RandomTape tape(6);
  TurnstileStream s = InsertDeleteChurnStream(1 << 16, 0, 50, &tape);
  FrequencyOracle o(1 << 16);
  o.AddStream(s);
  EXPECT_EQ(o.L0(), 0u);
}

TEST(WorkloadTest, PeriodicStringHasRequestedPeriod) {
  wbs::RandomTape tape(7);
  for (size_t p : {1UL, 3UL, 8UL, 16UL}) {
    std::string s = PeriodicString(64, p, 4, &tape);
    EXPECT_EQ(s.size(), 64u);
    for (size_t i = 0; i + p < s.size(); ++i) {
      EXPECT_EQ(s[i], s[i + p]) << "period " << p << " broken at " << i;
    }
  }
}

TEST(WorkloadTest, TextWithPlantedOccurrencesContainsThem) {
  wbs::RandomTape tape(8);
  std::string pat = "abcab";
  std::vector<size_t> pos = {0, 10, 40};
  std::string text = TextWithPlantedOccurrences(64, pat, pos, 3, &tape);
  auto found = strings::NaiveFindAll(text, pat);
  for (size_t p : pos) {
    EXPECT_NE(std::find(found.begin(), found.end(), p), found.end()) << p;
  }
}

TEST(WorkloadTest, GeneratorsDeterministicGivenSeed) {
  wbs::RandomTape t1(99), t2(99);
  ItemStream a = ZipfStream(1000, 500, 1.1, &t1);
  ItemStream b = ZipfStream(1000, 500, 1.1, &t2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].item, b[i].item);
}

}  // namespace
}  // namespace wbs::stream
