// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The pluggable ShardBackend boundary:
//
//   * InProcessBackend vs LoopbackRemoteBackend equivalence — the same
//     single-producer submissions must produce BIT-IDENTICAL answers for
//     the state-mergeable families (and, in this controlled setting, for
//     the sampling families too: the server replays the identical per-shard
//     substreams with identical derived seeds) on Zipf / planted / churn
//     workloads, plus equal per-shard summaries and space accounting;
//   * quiescence-free typed queries racing producers over the loopback
//     wire (the TSan target for the socket path);
//   * ticket-aware flow control: the max_inflight_bytes valve blocks
//     Submit and fails TrySubmit fast, deterministically pinned with a
//     gate sketch that parks the worker inside ApplyBatch.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/backend.h"
#include "engine/client.h"
#include "engine/metrics.h"
#include "engine/registry.h"
#include "engine/remote_backend.h"
#include "stream/workload.h"

#include "engine_test_util.h"

namespace wbs::engine {
namespace {

SketchConfig TestConfig(uint64_t universe, uint64_t seed) {
  return SketchConfig{}.WithUniverse(universe).WithSeed(seed);
}

stream::TurnstileStream ZipfTurnstile(uint64_t universe, size_t n,
                                      uint64_t seed) {
  wbs::RandomTape tape(seed);
  tape.set_logging(false);
  auto items = stream::ZipfStream(universe, n, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  return s;
}

// ------------------------------------------------- cross-backend equality --

/// Replays `s` through one client per backend (single producer, so ticket
/// order is submission order on both) and requires bit-identical merged
/// answers, per-shard live summaries, and space accounting.
void CheckBackendsAgree(const stream::TurnstileStream& s,
                        const SketchConfig& cfg,
                        const std::vector<std::string>& sketches,
                        size_t shards, size_t threads) {
  auto inprocess =
      MakeClient(sketches, cfg, shards, threads, InProcessBackendFactory());
  auto loopback =
      MakeClient(sketches, cfg, shards, threads, LoopbackBackendFactory());
  ASSERT_EQ(inprocess->ingestor().backend().name(), "inprocess");
  ASSERT_EQ(loopback->ingestor().backend().name(), "loopback");
  EXPECT_FALSE(
      inprocess->ingestor().backend().capabilities().crosses_process_boundary);
  EXPECT_TRUE(
      loopback->ingestor().backend().capabilities().crosses_process_boundary);

  // Opt out of env-injected replay ops (WBS_ENGINE_TOPOLOGY / WBS_ENGINE_
  // CRASH): this harness asserts bit-identical equality BETWEEN the two
  // backends, and a crash drill is asymmetric by design — it fires on the
  // loopback client but is Unimplemented for in-process placements — so an
  // injected op would make the two replays diverge rather than exercise
  // anything. Injection coverage for these workloads lives in the dedicated
  // churn and failover suites.
  ASSERT_TRUE(Replay(inprocess.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(Replay(loopback.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(inprocess->Finish().ok());
  ASSERT_TRUE(loopback->Finish().ok());

  for (const std::string& name : sketches) {
    auto h_in = inprocess->Handle(name);
    auto h_lo = loopback->Handle(name);
    ASSERT_TRUE(h_in.ok() && h_lo.ok()) << name;
    auto want = inprocess->RawSummary(h_in.value());
    auto got = loopback->RawSummary(h_lo.value());
    ASSERT_TRUE(want.ok()) << name << ": " << want.status().ToString();
    ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
    EXPECT_EQ(got.value().scalar, want.value().scalar) << name;
    EXPECT_EQ(got.value().has_scalar, want.value().has_scalar) << name;
    EXPECT_EQ(got.value().updates, want.value().updates) << name;
    ASSERT_EQ(got.value().items.size(), want.value().items.size()) << name;
    for (size_t i = 0; i < got.value().items.size(); ++i) {
      EXPECT_EQ(got.value().items[i].item, want.value().items[i].item)
          << name;
      EXPECT_EQ(got.value().items[i].estimate, want.value().items[i].estimate)
          << name;
    }

    // Per-shard live summaries cross the wire too (kReqSummary).
    for (size_t shard = 0; shard < shards; ++shard) {
      auto shard_want = inprocess->ingestor().ShardSummary(shard, name);
      auto shard_got = loopback->ingestor().ShardSummary(shard, name);
      ASSERT_TRUE(shard_want.ok() && shard_got.ok()) << name << "@" << shard;
      EXPECT_EQ(shard_got.value().scalar, shard_want.value().scalar)
          << name << "@" << shard;
      EXPECT_EQ(shard_got.value().updates, shard_want.value().updates)
          << name << "@" << shard;
      ASSERT_EQ(shard_got.value().items.size(),
                shard_want.value().items.size())
          << name << "@" << shard;
      for (size_t i = 0; i < shard_got.value().items.size(); ++i) {
        EXPECT_EQ(shard_got.value().items[i].item,
                  shard_want.value().items[i].item);
        EXPECT_EQ(shard_got.value().items[i].estimate,
                  shard_want.value().items[i].estimate);
      }
    }
  }
  EXPECT_EQ(loopback->ingestor().SpaceBits(),
            inprocess->ingestor().SpaceBits());
}

TEST(BackendEquivalenceTest, ZipfAllFamilies) {
  const uint64_t universe = 1 << 12;
  CheckBackendsAgree(
      ZipfTurnstile(universe, 30000, 61), TestConfig(universe, 7),
      {"misra_gries", "ams_f2", "sis_l0", "robust_hh", "crhf_hh"}, 4, 2);
}

TEST(BackendEquivalenceTest, PlantedHeavyHitters) {
  const uint64_t universe = 1 << 16;
  wbs::RandomTape tape(62);
  tape.set_logging(false);
  std::vector<uint64_t> planted;
  auto items = stream::PlantedHeavyHitterStream(universe, 30000, 3, 0.2,
                                                &tape, &planted);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  CheckBackendsAgree(s, TestConfig(universe, 8),
                     {"misra_gries", "robust_hh", "crhf_hh"}, 4, 2);
}

TEST(BackendEquivalenceTest, ChurnLinearFamilies) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(63);
  tape.set_logging(false);
  auto s = stream::InsertDeleteChurnStream(universe, 120, 2500, &tape);
  CheckBackendsAgree(s, TestConfig(universe, 9), {"ams_f2", "sis_l0"}, 4, 2);
}

TEST(BackendEquivalenceTest, RankDecision) {
  SketchConfig cfg = TestConfig(1, 17);
  cfg.rank.n = 32;
  cfg.rank.k = 8;
  stream::TurnstileStream diag;
  for (size_t i = 0; i < 8; ++i) {
    diag.push_back({uint64_t(i) * cfg.rank.n + i, 1});
  }
  CheckBackendsAgree(diag, cfg, {"rank_decision"}, 2, 1);
}

TEST(BackendEquivalenceTest, InlineModeAndQueriesBeforeAnySubmit) {
  const std::vector<std::string> sketches = {"ams_f2", "misra_gries"};
  const SketchConfig cfg = TestConfig(1 << 10, 19);
  // Queries on an empty loopback engine must answer like an empty local one
  // (all shards unpublished), not error.
  auto loopback = MakeClient(sketches, cfg, 2, 0, LoopbackBackendFactory());
  auto inprocess =
      MakeClient(sketches, cfg, 2, 0, InProcessBackendFactory());
  auto f2_lo = loopback->Handle("ams_f2").value();
  auto f2_in = inprocess->Handle("ams_f2").value();
  auto got = loopback->QueryScalar(f2_lo);
  auto want = inprocess->QueryScalar(f2_in);
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got.value().value, want.value().value);
  EXPECT_EQ(got.value().updates, want.value().updates);

  // Inline mode (num_threads == 0) drives the loopback data channel from
  // the submitting thread; answers still line up.
  auto s = ZipfTurnstile(1 << 10, 5000, 64);
  ASSERT_TRUE(Replay(loopback.get(), s).ok());
  ASSERT_TRUE(Replay(inprocess.get(), s).ok());
  ASSERT_TRUE(loopback->Flush().ok());
  ASSERT_TRUE(inprocess->Flush().ok());
  got = loopback->QueryScalar(f2_lo);
  want = inprocess->QueryScalar(f2_in);
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got.value().value, want.value().value);
  EXPECT_EQ(got.value().updates, uint64_t(s.size()));
  ASSERT_TRUE(loopback->Finish().ok());
  ASSERT_TRUE(inprocess->Finish().ok());
}

// Producers racing a typed-query thread across the loopback wire: no
// errors, and the final answer matches a quiescent in-process reference
// (TSan hunts the socket framing and server dispatch here).
TEST(BackendEquivalenceTest, LoopbackQueriesRaceProducersSafely) {
  const uint64_t universe = 1 << 12;
  auto s = ZipfTurnstile(universe, 40000, 65);
  const SketchConfig cfg = TestConfig(universe, 101);
  auto client =
      MakeClient({"ams_f2", "sis_l0"}, cfg, 4, 2, LoopbackBackendFactory());
  auto f2 = client->Handle("ams_f2").value();
  auto l0 = client->Handle("sis_l0").value();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> query_errors{0};
  std::thread querier([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!client->QueryScalar(f2).ok()) ++query_errors;
      if (!client->QueryScalar(l0).ok()) ++query_errors;
    }
  });
  std::vector<std::thread> producers;
  for (size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      const size_t batch = 512;
      for (size_t off = p * batch; off < s.size(); off += 2 * batch) {
        auto t = client->Submit(s.data() + off,
                                std::min(batch, s.size() - off));
        ASSERT_TRUE(t.ok());
      }
    });
  }
  for (auto& t : producers) t.join();
  ASSERT_TRUE(client->Flush().ok());
  stop.store(true, std::memory_order_relaxed);
  querier.join();
  ASSERT_TRUE(client->Finish().ok());
  EXPECT_EQ(query_errors.load(), 0u);

  auto reference =
      MakeClient({"ams_f2", "sis_l0"}, cfg, 4, 0, InProcessBackendFactory());
  ASSERT_TRUE(Replay(reference.get(), s).ok());
  ASSERT_TRUE(reference->Finish().ok());
  auto got = client->QueryScalar(f2);
  auto want = reference->QueryScalar(reference->Handle("ams_f2").value());
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got.value().value, want.value().value);
  EXPECT_EQ(got.value().updates, uint64_t(s.size()));
}

// ---------------------------------------------------------- flow control --

/// A sketch whose ApplyBatch parks on a global gate — lets the tests hold a
/// worker inside the backend deterministically while the submit-side valves
/// fill up. Registered once under "gate_sketch".
struct GateControl {
  std::mutex mu;
  std::condition_variable cv;
  bool open = true;
  int waiting = 0;

  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    open = false;
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  /// Blocks until a worker is parked inside ApplyBatch.
  void AwaitWaiter() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return waiting > 0; });
  }
  void Pass() {
    std::unique_lock<std::mutex> lock(mu);
    ++waiting;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
    --waiting;
  }
};

GateControl& Gate() {
  static GateControl* gate = new GateControl();
  return *gate;
}

class GateSketch final : public Sketch {
 public:
  const std::string& name() const override {
    static const std::string kName = "gate_sketch";
    return kName;
  }
  Status Update(const stream::TurnstileUpdate& u) override {
    if (u.delta != 0) ++updates_;
    return Status::OK();
  }
  Status ApplyBatch(const UpdateBatch& batch) override {
    Gate().Pass();
    for (size_t i = 0; i < batch.size; ++i) {
      if (batch.data[i].delta != 0) ++updates_;
    }
    return Status::OK();
  }
  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name();
    s.has_scalar = true;
    s.scalar = double(updates_);
    s.updates = updates_;
    return s;
  }
  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const GateSketch*>(&other);
    if (o == nullptr) return Status::InvalidArgument("gate: type mismatch");
    updates_ += o->updates_;
    return Status::OK();
  }
  uint64_t SpaceBits() const override { return 64; }

 private:
  uint64_t updates_ = 0;
};

bool RegisterGateSketch() {
  static bool once = [] {
    Status s = SketchRegistry::Global().Register(
        "gate_sketch",
        [](const SketchConfig&) { return std::make_unique<GateSketch>(); },
        SketchFamily::kScalarEstimate);
    return s.ok();
  }();
  return once;
}

std::unique_ptr<Client> MakeGatedClient(size_t max_inflight_tickets,
                                        size_t max_inflight_bytes) {
  EXPECT_TRUE(RegisterGateSketch());
  ClientOptions opts;
  opts.ingest.num_shards = 1;
  opts.ingest.num_threads = 1;
  opts.ingest.sketches = {"gate_sketch"};
  opts.ingest.config = TestConfig(1 << 10, 3);
  opts.ingest.max_inflight_tickets = max_inflight_tickets;
  opts.ingest.max_inflight_bytes = max_inflight_bytes;
  // The gate parks the worker inside the backend, so keep this test on the
  // in-process backend regardless of WBS_ENGINE_BACKEND (under loopback the
  // park happens on a server thread; semantics hold but Finish() ordering
  // in the teardown path would depend on gate state).
  opts.ingest.backend = InProcessBackendFactory();
  auto client = Client::Create(opts);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

const stream::TurnstileStream& FourUpdates() {  // 64 valve bytes
  static const stream::TurnstileStream s{{1, 1}, {2, 1}, {3, 1}, {4, 1}};
  return s;
}

TEST(FlowControlTest, TrySubmitFailsFastWhenBytesValveIsFull) {
  auto client = MakeGatedClient(/*tickets=*/0, /*bytes=*/
                                FourUpdates().size() *
                                    sizeof(stream::TurnstileUpdate));
  Gate().Close();
  auto first = client->Submit(FourUpdates());  // fills the whole valve
  ASSERT_TRUE(first.ok());
  Gate().AwaitWaiter();  // worker parked inside ApplyBatch

  auto second = client->TrySubmit(FourUpdates());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), Status::Code::kResourceExhausted);

  Gate().Open();
  ASSERT_TRUE(client->Wait(first.value()).ok());
  // Valve drained: the same submission is admitted now.
  auto third = client->TrySubmit(FourUpdates());
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  ASSERT_TRUE(client->Finish().ok());
  auto handle = client->Handle("gate_sketch").value();
  EXPECT_EQ(client->QueryScalar(handle).value().updates,
            2 * FourUpdates().size());
}

TEST(FlowControlTest, TrySubmitFailsFastWhenTicketValveIsFull) {
  auto client = MakeGatedClient(/*tickets=*/1, /*bytes=*/0);
  Gate().Close();
  auto first = client->Submit(FourUpdates());
  ASSERT_TRUE(first.ok());
  Gate().AwaitWaiter();
  auto second = client->TrySubmit(FourUpdates());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), Status::Code::kResourceExhausted);
  Gate().Open();
  ASSERT_TRUE(client->Wait(first.value()).ok());
  ASSERT_TRUE(client->Finish().ok());
}

TEST(FlowControlTest, SubmitBlocksOnBytesValveUntilDrain) {
  auto client = MakeGatedClient(/*tickets=*/0, /*bytes=*/
                                FourUpdates().size() *
                                    sizeof(stream::TurnstileUpdate));
  Gate().Close();
  auto first = client->Submit(FourUpdates());
  ASSERT_TRUE(first.ok());
  Gate().AwaitWaiter();

  std::atomic<bool> second_returned{false};
  std::thread producer([&] {
    auto second = client->Submit(FourUpdates());  // must block on the valve
    EXPECT_TRUE(second.ok());
    second_returned.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_returned.load(std::memory_order_acquire))
      << "Submit did not block on a full bytes valve";

  Gate().Open();
  producer.join();
  EXPECT_TRUE(second_returned.load(std::memory_order_acquire));
  ASSERT_TRUE(client->Finish().ok());
  auto handle = client->Handle("gate_sketch").value();
  EXPECT_EQ(client->QueryScalar(handle).value().updates,
            2 * FourUpdates().size());
}

TEST(FlowControlTest, OversizedBatchIsAdmittedWhenIdle) {
  // A batch bigger than the whole valve must not deadlock: it is admitted
  // when nothing is in flight.
  auto client = MakeGatedClient(/*tickets=*/0, /*bytes=*/16);
  stream::TurnstileStream big;
  for (uint64_t i = 0; i < 64; ++i) big.push_back({i % 100, 1});  // 1 KiB
  auto t = client->Submit(big);  // gate open: applies and drains
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(client->Wait(t.value()).ok());
  ASSERT_TRUE(client->Finish().ok());
}

TEST(BackendContractTest, SerializationlessSketchFailsLoopbackQueries) {
  // A custom sketch without SerializeState/DeserializeState works on the
  // in-process backend but cannot cross a remote shard boundary: the
  // loopback engine must surface Unimplemented at snapshot-query time —
  // never a silent empty answer.
  EXPECT_TRUE(RegisterGateSketch());  // gate_sketch has no wire format
  ClientOptions opts;
  opts.ingest.num_shards = 2;
  opts.ingest.num_threads = 0;
  opts.ingest.sketches = {"gate_sketch"};
  opts.ingest.config = TestConfig(1 << 10, 11);
  opts.ingest.backend = LoopbackBackendFactory();
  auto client = Client::Create(opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value()->Submit(FourUpdates()).ok());
  ASSERT_TRUE(client.value()->Flush().ok());  // server-side publish is fine
  auto handle = client.value()->Handle("gate_sketch").value();
  auto scalar = client.value()->QueryScalar(handle);
  ASSERT_FALSE(scalar.ok());
  EXPECT_EQ(scalar.status().code(), Status::Code::kUnimplemented)
      << scalar.status().ToString();
  ASSERT_TRUE(client.value()->Finish().ok());
}

TEST(BackendContractTest, FailedMetricsPollIsCountedNotSilent) {
  // A placement whose control channel has died is skipped by the metrics
  // poll, but never silently: the failure is counted per shard
  // (engine.shard.<id>.metrics_errors_total) and the shard's health
  // surface keeps reporting.
  ClientOptions opts;
  opts.ingest.num_shards = 2;
  opts.ingest.num_threads = 1;
  opts.ingest.sketches = {"ams_f2"};
  opts.ingest.config = TestConfig(1 << 10, 23);
  opts.ingest.backend = LoopbackBackendFactory();
  // Supervision on so the dead placement degrades instead of poisoning
  // the pipeline at Finish(); no auto-recovery — the socket must STAY
  // closed for the polls below.
  opts.ingest.failover.heartbeat_interval_ms = 10;
  opts.ingest.failover.auto_recover = false;
  auto client = Client::Create(opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value()->Submit(FourUpdates()).ok());
  ASSERT_TRUE(client.value()->Flush().ok());
  MetricsSnapshot healthy = client.value()->Metrics();
  EXPECT_EQ(healthy.Value("engine.shard.1.metrics_errors_total"), 0u);

  ASSERT_TRUE(client.value()->InjectShardCrash(1).ok());
  MetricsSnapshot degraded = client.value()->Metrics();
  EXPECT_GE(degraded.Value("engine.shard.1.metrics_errors_total"), 1u);
  // The healthy shard's backend samples still flow; the crashed shard
  // keeps its health gauges even though its backend poll failed.
  EXPECT_NE(degraded.Find("engine.shard.0.wire.frames_out_total"), nullptr);
  EXPECT_NE(degraded.Find("engine.shard.1.health"), nullptr);
  ASSERT_TRUE(client.value()->Finish().ok());
}

TEST(FlowControlTest, InlineModeTrySubmitAppliesSynchronously) {
  EXPECT_TRUE(RegisterGateSketch());
  ClientOptions opts;
  opts.ingest.num_shards = 2;
  opts.ingest.num_threads = 0;
  opts.ingest.sketches = {"ams_f2"};
  opts.ingest.config = TestConfig(1 << 10, 5);
  opts.ingest.max_inflight_bytes = 16;
  auto client = Client::Create(opts);
  ASSERT_TRUE(client.ok());
  auto t = client.value()->TrySubmit(FourUpdates());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().seq, 0u);  // inline: applied before returning
  ASSERT_TRUE(client.value()->Finish().ok());
}

}  // namespace
}  // namespace wbs::engine
