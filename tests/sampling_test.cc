// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Sampling primitives (Theorem 2.3 [BY20] and the reservoir sampler).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "sampling/bernoulli.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

namespace wbs::sampling {
namespace {

TEST(BernoulliRateTest, MatchesFormula) {
  // p = C log(n/delta) / (eps^2 m), capped at 1.
  double p = BernoulliRate(1 << 20, 1 << 20, 0.1, 0.1, 4.0);
  double expect = 4.0 * std::log(double(1 << 20) / 0.1) /
                  (0.01 * double(1 << 20));
  EXPECT_DOUBLE_EQ(p, expect);
}

TEST(BernoulliRateTest, CapsAtOne) {
  EXPECT_DOUBLE_EQ(BernoulliRate(1 << 20, 10, 0.01, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(BernoulliRate(1 << 20, 0, 0.1, 0.1), 1.0);
}

TEST(BernoulliRateTest, DecreasesWithStreamLength) {
  double p1 = BernoulliRate(1 << 20, 1 << 14, 0.1, 0.1);
  double p2 = BernoulliRate(1 << 20, 1 << 20, 0.1, 0.1);
  EXPECT_GT(p1, p2);
}

TEST(BernoulliRateTest, IncreasesWithAccuracy) {
  double loose = BernoulliRate(1 << 20, 1 << 20, 0.2, 0.1);
  double tight = BernoulliRate(1 << 20, 1 << 20, 0.05, 0.1);
  EXPECT_GT(tight, loose);
  EXPECT_NEAR(tight / loose, 16.0, 1e-9);  // 1/eps^2 scaling
}

TEST(BernoulliSamplerTest, KeepRateConcentrates) {
  wbs::RandomTape tape(1);
  BernoulliSampler s(0.25, &tape);
  const int n = 20000;
  for (int i = 0; i < n; ++i) s.Offer();
  EXPECT_EQ(s.offered(), uint64_t(n));
  EXPECT_NEAR(double(s.kept()) / n, 0.25, 0.02);
}

TEST(BernoulliSamplerTest, InverseRate) {
  wbs::RandomTape tape(2);
  BernoulliSampler s(0.2, &tape);
  EXPECT_DOUBLE_EQ(s.InverseRate(), 5.0);
  BernoulliSampler z(0.0, &tape);
  EXPECT_DOUBLE_EQ(z.InverseRate(), 0.0);
}

TEST(BernoulliSamplerTest, NoPrivateRandomnessRemains) {
  // The white-box robustness of Theorem 2.3 rests on every coin being
  // tossed AFTER the adversary commits the update: the tape log after each
  // Offer already contains the coin. Verify the log grows per offer.
  wbs::RandomTape tape(3);
  BernoulliSampler s(0.5, &tape);
  for (int i = 1; i <= 10; ++i) {
    size_t before = tape.log().size();
    s.Offer();
    EXPECT_GT(tape.log().size(), before);
  }
}

// Theorem 2.3 end-to-end: sampling at the prescribed rate preserves
// eps-heavy hitters, parameterized over eps.
class SamplingPreservesHeavyTest : public ::testing::TestWithParam<double> {};

TEST_P(SamplingPreservesHeavyTest, HeavyItemsSurvive) {
  const double eps = GetParam();
  const uint64_t m = 60000;
  int misses = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    wbs::RandomTape tape(100 + t);
    std::vector<uint64_t> planted;
    auto s = stream::PlantedHeavyHitterStream(1 << 16, m, 2, 2 * eps, &tape,
                                              &planted);
    double p = BernoulliRate(1 << 16, m, eps, 0.1);
    SampledFrequencyEstimator est(p, &tape);
    for (const auto& u : s) est.Offer(u.item);
    for (uint64_t id : planted) {
      // Estimated frequency within eps*m of the ~2 eps m truth.
      if (std::abs(est.Estimate(id) - 2 * eps * double(m)) >
          eps * double(m)) {
        ++misses;
      }
    }
  }
  EXPECT_LE(misses, 2) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SamplingPreservesHeavyTest,
                         ::testing::Values(0.05, 0.1, 0.2));

TEST(ReservoirTest, HoldsAtMostK) {
  wbs::RandomTape tape(4);
  ReservoirSampler r(8, &tape);
  for (uint64_t i = 0; i < 1000; ++i) r.Offer(i);
  EXPECT_EQ(r.reservoir().size(), 8u);
  EXPECT_EQ(r.seen(), 1000u);
}

TEST(ReservoirTest, ShortStreamKeepsAll) {
  wbs::RandomTape tape(5);
  ReservoirSampler r(16, &tape);
  for (uint64_t i = 0; i < 5; ++i) r.Offer(i);
  EXPECT_EQ(r.reservoir().size(), 5u);
}

TEST(ReservoirTest, UniformInclusionProbability) {
  // Each item survives with probability k/n; check the first and the last
  // item's empirical inclusion rates.
  const size_t k = 4;
  const uint64_t n = 64;
  int first_in = 0, last_in = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    wbs::RandomTape tape(6000 + t);
    ReservoirSampler r(k, &tape);
    for (uint64_t i = 0; i < n; ++i) r.Offer(i);
    for (uint64_t v : r.reservoir()) {
      first_in += v == 0 ? 1 : 0;
      last_in += v == n - 1 ? 1 : 0;
    }
  }
  const double expect = double(k) / double(n);
  EXPECT_NEAR(double(first_in) / trials, expect, 0.02);
  EXPECT_NEAR(double(last_in) / trials, expect, 0.02);
}

TEST(ReservoirTest, SpaceBits) {
  wbs::RandomTape tape(7);
  ReservoirSampler r(4, &tape);
  for (uint64_t i = 0; i < 100; ++i) r.Offer(i);
  EXPECT_EQ(r.SpaceBits(1 << 20), 4 * 20 + wbs::BitsForValue(100));
}

TEST(SampledFrequencyEstimatorTest, UnbiasedOnUniform) {
  wbs::RandomTape tape(8);
  SampledFrequencyEstimator est(0.1, &tape);
  const uint64_t reps = 20000;
  for (uint64_t i = 0; i < reps; ++i) est.Offer(7);
  EXPECT_NEAR(est.Estimate(7), double(reps), 0.15 * double(reps));
  EXPECT_DOUBLE_EQ(est.Estimate(8), 0.0);
}

TEST(SampledFrequencyEstimatorTest, SpaceProportionalToSampledSupport) {
  wbs::RandomTape tape(9);
  SampledFrequencyEstimator est(0.01, &tape);
  for (uint64_t i = 0; i < 10000; ++i) est.Offer(i % 50);
  // ~100 samples over 50 keys: space ~ 50 * (20 + small).
  EXPECT_GT(est.SpaceBits(1 << 20), 100u);
  EXPECT_LT(est.SpaceBits(1 << 20), 50 * 40u);
}

}  // namespace
}  // namespace wbs::sampling
