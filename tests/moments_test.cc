// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Fp moments: the AMS F2 sketch in the oblivious model, the white-box kernel
// attack that destroys it (Theorem 1.9's phenomenon), and the exact Omega(n)
// baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "moments/ams.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

namespace wbs::moments {
namespace {

TEST(AmsTest, ZeroStreamZeroEstimate) {
  wbs::RandomTape tape(1);
  AmsF2Sketch alg(1 << 16, 36, &tape);
  EXPECT_DOUBLE_EQ(alg.Query(), 0.0);
}

TEST(AmsTest, SignsAreBalancedAndDeterministic) {
  wbs::RandomTape tape(2);
  AmsF2Sketch alg(1 << 16, 12, &tape);
  int sum = 0;
  for (uint64_t item = 0; item < 2000; ++item) {
    int s = alg.Sign(3, item);
    EXPECT_TRUE(s == 1 || s == -1);
    EXPECT_EQ(s, alg.Sign(3, item));
    sum += s;
  }
  EXPECT_LT(std::abs(sum), 200);
}

class AmsAccuracyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AmsAccuracyTest, ObliviousStreamsEstimateF2) {
  const size_t rows = GetParam();
  int ok = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    wbs::RandomTape tape(100 + t);
    AmsF2Sketch alg(1 << 12, rows, &tape);
    stream::FrequencyOracle truth(1 << 12);
    auto s = stream::ZipfStream(1 << 12, 5000, 1.1, &tape);
    for (const auto& u : s) {
      truth.Add(u.item);
      ASSERT_TRUE(alg.Update({u.item, 1}).ok());
    }
    double f2 = truth.Fp(2);
    // More rows => tighter; accept a generous constant-factor window.
    if (alg.Query() >= f2 / 3 && alg.Query() <= 3 * f2) ++ok;
  }
  EXPECT_GE(ok, 7) << "rows=" << rows;
}

INSTANTIATE_TEST_SUITE_P(Rows, AmsAccuracyTest,
                         ::testing::Values(24, 48, 96));

TEST(AmsTest, TurnstileCancellation) {
  wbs::RandomTape tape(3);
  AmsF2Sketch alg(1 << 10, 24, &tape);
  ASSERT_TRUE(alg.Update({5, 7}).ok());
  ASSERT_TRUE(alg.Update({5, -7}).ok());
  EXPECT_DOUBLE_EQ(alg.Query(), 0.0);
}

TEST(AmsTest, RejectsOutOfUniverse) {
  wbs::RandomTape tape(4);
  AmsF2Sketch alg(100, 12, &tape);
  EXPECT_FALSE(alg.Update({100, 1}).ok());
}

TEST(AmsTest, SpaceSublinear) {
  wbs::RandomTape tape(5);
  const uint64_t n = 1 << 16;
  AmsF2Sketch alg(n, 48, &tape);
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(alg.Update({i % n, 1}).ok());
  }
  EXPECT_LT(alg.SpaceBits(), n);  // o(n) — which is WHY the attack works
}

// ----------------------------------------------- the white-box kernel attack

class KernelAttackTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelAttackTest, DrivesSketchToZeroWhileF2Positive) {
  const size_t rows = GetParam();
  wbs::RandomTape tape(200 + rows);
  AmsF2Sketch alg(1 << 16, rows, &tape);
  AmsKernelAdversary adv(&alg);
  ASSERT_TRUE(adv.armed()) << "kernel computation must succeed at r=" << rows;
  stream::FrequencyOracle truth(1 << 16);
  auto result = core::RunGame<stream::TurnstileUpdate, double>(
      &alg, &adv, 100000,
      [&](const stream::TurnstileUpdate& u) { truth.Add(u.item, u.delta); },
      [&](uint64_t, const double& answer) {
        double f2 = truth.Fp(2);
        if (f2 == 0) return true;
        // Any 3-approximation claim:
        return answer >= f2 / 3 && answer <= 3 * f2;
      },
      /*stop_at_first_failure=*/false);
  // At the end of the scripted kernel stream the sketch is identically zero
  // while the true F2 is positive: the algorithm must have failed.
  EXPECT_FALSE(result.algorithm_survived);
  EXPECT_DOUBLE_EQ(alg.Query(), 0.0);
  EXPECT_GT(truth.Fp(2), 0.0);
  EXPECT_DOUBLE_EQ(truth.Fp(2), adv.planted_f2());
}

INSTANTIATE_TEST_SUITE_P(Rows, KernelAttackTest,
                         ::testing::Values(6, 12, 18, 24));

TEST(KernelAttackTest2, ExactBaselineSurvivesTheSameAttack) {
  // The Omega(n)-space exact algorithm is immune — matching Theorem 1.9's
  // Omega(n) bound being tight.
  wbs::RandomTape tape(6);
  AmsF2Sketch victim(1 << 16, 12, &tape);
  AmsKernelAdversary adv(&victim);
  ASSERT_TRUE(adv.armed());
  ExactF2Stream exact(1 << 16);
  stream::FrequencyOracle truth(1 << 16);
  auto result = core::RunGame<stream::TurnstileUpdate, double>(
      &exact, &adv, 100000,
      [&](const stream::TurnstileUpdate& u) { truth.Add(u.item, u.delta); },
      [&](uint64_t, const double& answer) {
        return answer == truth.Fp(2);
      });
  EXPECT_TRUE(result.algorithm_survived);
}

TEST(KernelAttackTest2, AttackCostGrowsWithRows) {
  // The attack needs r+1 items and a rank-r kernel solve: still polynomial
  // (that is the point — no crypto protects a plain linear sketch), but
  // the planted F2 mass grows, quantifying the attack.
  double prev = 0;
  for (size_t rows : {6u, 12u, 24u}) {
    wbs::RandomTape tape(300 + rows);
    AmsF2Sketch alg(1 << 16, rows, &tape);
    AmsKernelAdversary adv(&alg);
    ASSERT_TRUE(adv.armed());
    EXPECT_GT(adv.planted_f2(), 0.0);
    prev = adv.planted_f2();
  }
  (void)prev;
}

TEST(ExactF2Test, ComputesExactly) {
  ExactF2Stream alg(1 << 10);
  ASSERT_TRUE(alg.Update({1, 3}).ok());
  ASSERT_TRUE(alg.Update({2, -4}).ok());
  ASSERT_TRUE(alg.Update({1, 1}).ok());
  EXPECT_DOUBLE_EQ(alg.Query(), 16.0 + 16.0);
}

TEST(ExactF2Test, SpaceGrowsWithSupport) {
  ExactF2Stream alg(uint64_t{1} << 32);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(alg.Update({i, 1}).ok());
  }
  EXPECT_GE(alg.SpaceBits(), 1000u * 32u);
}

TEST(AmsTest, ApplyRunBitIdenticalToSequentialUpdates) {
  // The batched row-major kernel reorders the additions but must land on
  // exactly the same counters (same signs, commutative 64-bit sums), hence
  // the same serialized state.
  const uint64_t universe = uint64_t{1} << 16;
  wbs::RandomTape tape_a(5), tape_b(5);
  AmsF2Sketch sequential(universe, 48, &tape_a);
  AmsF2Sketch batched(universe, 48, &tape_b);

  std::vector<wbs::stream::TurnstileUpdate> ups(5000);
  uint64_t s = 77;
  for (auto& u : ups) {
    u.item = wbs::SplitMix64(&s) % universe;
    u.delta = int64_t(wbs::SplitMix64(&s) % 21) - 10;
  }
  for (const auto& u : ups) ASSERT_TRUE(sequential.Update(u).ok());
  ASSERT_TRUE(batched.ApplyRun(ups.data(), ups.size()).ok());

  core::StateWriter wa, wb;
  sequential.SerializeState(&wa);
  batched.SerializeState(&wb);
  EXPECT_EQ(wa.words(), wb.words());
  EXPECT_EQ(sequential.Query(), batched.Query());
}

TEST(AmsTest, ApplyRunRejectsOutOfUniverseItems) {
  wbs::RandomTape tape(6);
  AmsF2Sketch alg(16, 12, &tape);
  std::vector<wbs::stream::TurnstileUpdate> ups = {{1, 1}, {100, 1}};
  EXPECT_FALSE(alg.ApplyRun(ups.data(), ups.size()).ok());
}

TEST(AmsTest, UnmergeFromInvertsMergeFrom) {
  const uint64_t universe = 1 << 10;
  wbs::RandomTape tape_a(9), tape_b(9);
  AmsF2Sketch a(universe, 12, &tape_a);
  AmsF2Sketch b(universe, 12, &tape_b);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(a.Update({i % universe, int64_t(i % 7) - 3}).ok());
    ASSERT_TRUE(b.Update({(i * 13) % universe, int64_t(i % 5) - 2}).ok());
  }
  core::StateWriter before;
  a.SerializeState(&before);
  ASSERT_TRUE(a.MergeFrom(b).ok());
  ASSERT_TRUE(a.UnmergeFrom(b).ok());
  core::StateWriter after;
  a.SerializeState(&after);
  EXPECT_EQ(before.words(), after.words());
}

}  // namespace
}  // namespace wbs::moments
