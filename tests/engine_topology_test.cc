// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The dynamic shard topology: the versioned routing layer (slot table,
// generations), live scale-out (AddShards) and live shard handoff
// (MoveShard), and mixed backend placement (CompositeBackendFactory).
//
// The load-bearing guarantees pinned here:
//   * the initial slot table reproduces the legacy hash-mod-shards
//     partition bit-for-bit;
//   * a mid-ingest MoveShard preserves query answers — summaries right
//     after a handoff are bit-identical to right before (all six builtin
//     families), and runs that continue ingesting afterwards stay
//     bit-identical to a no-handoff run for the state-exact families
//     (misra_gries, ams_f2, sis_l0, rank_decision) on Zipf / planted /
//     churn workloads, across in-process, loopback, and mixed placements
//     and both handoff targets;
//   * the sampling families (robust_hh, crhf_hh) continue as mergeable
//     frozen-prefix + fresh-sampler summaries: identical across every
//     placement pattern, with planted heavy hitters still recovered;
//   * post-scale-out estimates equal a single-topology reference merge
//     (bit-identical for the linear families, exact for eviction-free
//     Misra-Gries), because answers merge over all substreams ever;
//   * topology operations linearize at batch barriers while quiescence-
//     free queries keep answering, and a failed operation (e.g. a sketch
//     with no wire format) leaves the topology untouched.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/backend.h"
#include "engine/client.h"
#include "engine/registry.h"
#include "engine/remote_backend.h"
#include "engine/sharded_ingestor.h"
#include "engine/topology.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

#include "engine_test_util.h"

namespace wbs::engine {
namespace {

SketchConfig TestConfig(uint64_t universe, uint64_t seed) {
  return SketchConfig{}.WithUniverse(universe).WithSeed(seed);
}

stream::TurnstileStream ZipfTurnstile(uint64_t universe, size_t n,
                                      uint64_t seed) {
  wbs::RandomTape tape(seed);
  tape.set_logging(false);
  auto items = stream::ZipfStream(universe, n, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  return s;
}

BackendFactory MixedFactory() {
  return CompositeBackendFactory(
      {InProcessBackendFactory(), LoopbackBackendFactory()});
}

struct BackendCase {
  const char* name;
  BackendFactory factory;
};

std::vector<BackendCase> AllPlacements() {
  return {{"inprocess", InProcessBackendFactory()},
          {"loopback", LoopbackBackendFactory()},
          {"mixed", MixedFactory()}};
}

/// Element-wise bit-identity of two summaries.
void ExpectSummariesIdentical(const SketchSummary& got,
                              const SketchSummary& want,
                              const std::string& context) {
  EXPECT_EQ(got.has_scalar, want.has_scalar) << context;
  EXPECT_EQ(got.scalar, want.scalar) << context;
  EXPECT_EQ(got.updates, want.updates) << context;
  ASSERT_EQ(got.items.size(), want.items.size()) << context;
  for (size_t i = 0; i < got.items.size(); ++i) {
    EXPECT_EQ(got.items[i].item, want.items[i].item) << context;
    EXPECT_EQ(got.items[i].estimate, want.items[i].estimate) << context;
  }
}

/// Replays `s` in `batch`-sized submissions, invoking `mid` between the
/// first and second half (a deterministic batch boundary).
Status ReplayWithMidpoint(Client* client, const stream::TurnstileStream& s,
                          size_t batch,
                          const std::function<Status()>& mid) {
  const size_t batches = (s.size() + batch - 1) / batch;
  size_t index = 0;
  for (size_t off = 0; off < s.size(); off += batch, ++index) {
    if (index == batches / 2) {
      if (Status ms = mid(); !ms.ok()) return ms;
    }
    auto t = client->Submit(s.data() + off,
                            std::min(batch, s.size() - off));
    if (!t.ok()) return t.status();
  }
  return Status::OK();
}

// ------------------------------------------------------------ slot table --

TEST(ShardTopologyTest, InitialTableReproducesLegacyPartition) {
  for (size_t shards : {1u, 3u, 4u, 8u}) {
    auto view = ShardTopology::MakeInitial(shards, 16, nullptr);
    EXPECT_EQ(view->generation, 1u);
    EXPECT_EQ(view->num_shards(), shards);
    EXPECT_EQ(view->num_slots(), shards * 16);
    for (uint64_t item = 0; item < 4000; ++item) {
      ASSERT_EQ(view->ShardFor(item), ShardedIngestor::ShardOf(item, shards))
          << "item " << item << " with " << shards << " shards";
    }
  }
}

TEST(ShardTopologyTest, AddedShardsStealSlotsEvenly) {
  auto base = ShardTopology::MakeInitial(4, 16, nullptr);  // 64 slots
  std::vector<ShardPlacement> added(2);  // null backends: routing-only test
  auto grown = ShardTopology::WithAddedShards(*base, added);
  EXPECT_EQ(grown->generation, 2u);
  EXPECT_EQ(grown->num_shards(), 6u);
  const size_t target = grown->num_slots() / grown->num_shards();  // 10
  size_t total = 0, old_min = SIZE_MAX, old_max = 0;
  for (size_t s = 0; s < grown->num_shards(); ++s) {
    const size_t owned = grown->SlotsOwnedBy(s);
    total += owned;
    if (s >= 4) {
      EXPECT_EQ(owned, target) << "new shard " << s;
    } else {
      old_min = std::min(old_min, owned);
      old_max = std::max(old_max, owned);
    }
  }
  EXPECT_EQ(total, grown->num_slots());
  EXPECT_LE(old_max - old_min, 1u);  // even stealing
  // Slots that did not move keep their owner: routing only changes for
  // items whose slot was stolen.
  size_t moved = 0;
  for (size_t slot = 0; slot < base->num_slots(); ++slot) {
    if (base->slot_to_shard[slot] != grown->slot_to_shard[slot]) ++moved;
  }
  EXPECT_EQ(moved, 2 * target);
}

// -------------------------------------------------- handoff: bit fidelity --

// Summaries right after a handoff must be bit-identical to right before,
// for ALL SIX builtin families — the serialized snapshot states are the
// transfer format and the transfer loses nothing. Runs on the env-selected
// backend, so CI pins it per placement.
TEST(TopologyHandoffTest, SummariesIdenticalAcrossTheMove) {
  const uint64_t universe = 1 << 12;
  auto s = ZipfTurnstile(universe, 20000, 301);
  SketchConfig cfg = TestConfig(universe, 31);
  const std::vector<std::string> sketches = {
      "misra_gries", "ams_f2", "sis_l0", "robust_hh", "crhf_hh"};
  auto client = MakeClient(sketches, cfg, 4, 2);
  ASSERT_TRUE(Replay(client.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(client->Flush().ok());

  std::vector<SketchSummary> before;
  for (const std::string& name : sketches) {
    auto summary = client->RawSummary(client->Handle(name).value());
    ASSERT_TRUE(summary.ok()) << name;
    before.push_back(std::move(summary).value());
  }
  const uint64_t generation = client->Topology().generation;

  for (size_t shard = 0; shard < 2; ++shard) {  // move two of the four
    ASSERT_TRUE(client->MoveShard(shard, InProcessBackendFactory()).ok());
    // The recorded trace spans are the single source of handoff phase
    // timings and transfer sizes.
    TraceSpan move;
    for (const auto& span : client->TraceSpans()) {
      if (span.name == "move_shard" && span.Attr("shard") == shard) {
        move = span;
      }
    }
    ASSERT_EQ(move.name, "move_shard") << "shard " << shard;
    EXPECT_GT(move.Attr("state_bytes"), 0u);
  }
  EXPECT_EQ(client->Topology().generation, generation + 2);

  for (size_t i = 0; i < sketches.size(); ++i) {
    auto after = client->RawSummary(client->Handle(sketches[i]).value());
    ASSERT_TRUE(after.ok()) << sketches[i];
    ExpectSummariesIdentical(after.value(), before[i],
                             sketches[i] + " across the move");
  }
  ASSERT_TRUE(client->Finish().ok());
}

// ------------------------------------- handoff: mid-ingest bit-identity --

// A run that hands a shard off mid-stream and KEEPS INGESTING must end
// bit-identical to a run that never moved anything, for the state-exact
// families — across every placement pattern and both handoff targets.
void CheckMidIngestMovePreservesAnswers(
    const stream::TurnstileStream& s, const SketchConfig& cfg,
    const std::vector<std::string>& sketches, const BackendFactory& primary,
    const BackendFactory& target, const std::string& context) {
  auto reference = MakeClient(sketches, cfg, 4, 2, primary);
  ASSERT_TRUE(Replay(reference.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());

  auto moved = MakeClient(sketches, cfg, 4, 2, primary);
  ASSERT_TRUE(ReplayWithMidpoint(moved.get(), s, 1024, [&] {
                return moved->MoveShard(1, target);
              }).ok());
  ASSERT_TRUE(moved->Finish().ok());

  for (const std::string& name : sketches) {
    auto got = moved->RawSummary(moved->Handle(name).value());
    auto want = reference->RawSummary(reference->Handle(name).value());
    ASSERT_TRUE(got.ok() && want.ok()) << name << " " << context;
    ExpectSummariesIdentical(got.value(), want.value(), name + " " + context);
  }
}

TEST(TopologyHandoffTest, MidIngestMoveBitIdenticalOnZipf) {
  const uint64_t universe = 1 << 12;
  auto s = ZipfTurnstile(universe, 24000, 302);
  SketchConfig cfg = TestConfig(universe, 33);
  const std::vector<std::string> sketches = {"misra_gries", "ams_f2",
                                             "sis_l0"};
  for (const BackendCase& primary : AllPlacements()) {
    for (const BackendCase& target :
         {BackendCase{"inprocess", InProcessBackendFactory()},
          BackendCase{"loopback", LoopbackBackendFactory()}}) {
      CheckMidIngestMovePreservesAnswers(
          s, cfg, sketches, primary.factory, target.factory,
          std::string("primary=") + primary.name + " target=" + target.name);
    }
  }
}

TEST(TopologyHandoffTest, MidIngestMoveBitIdenticalOnChurn) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(303);
  tape.set_logging(false);
  auto s = stream::InsertDeleteChurnStream(universe, 120, 2500, &tape);
  SketchConfig cfg = TestConfig(universe, 35);
  CheckMidIngestMovePreservesAnswers(s, cfg, {"ams_f2", "sis_l0"},
                                     InProcessBackendFactory(),
                                     LoopbackBackendFactory(),
                                     "churn inprocess->loopback");
  CheckMidIngestMovePreservesAnswers(s, cfg, {"ams_f2", "sis_l0"},
                                     LoopbackBackendFactory(),
                                     InProcessBackendFactory(),
                                     "churn loopback->inprocess");
}

TEST(TopologyHandoffTest, MidIngestMoveBitIdenticalOnRankDecision) {
  SketchConfig cfg = TestConfig(1, 17);
  cfg.rank.n = 32;
  cfg.rank.k = 8;
  stream::TurnstileStream diag;
  for (size_t i = 0; i < 8; ++i) {
    diag.push_back({uint64_t(i) * cfg.rank.n + i, 1});
  }
  auto reference = MakeClient({"rank_decision"}, cfg, 2, 1,
                              InProcessBackendFactory());
  ASSERT_TRUE(Replay(reference.get(), diag, 2, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());
  auto moved = MakeClient({"rank_decision"}, cfg, 2, 1,
                          InProcessBackendFactory());
  ASSERT_TRUE(ReplayWithMidpoint(moved.get(), diag, 2, [&] {
                return moved->MoveShard(0, LoopbackBackendFactory());
              }).ok());
  ASSERT_TRUE(moved->Finish().ok());
  auto got = moved->QueryRank(moved->Handle("rank_decision").value());
  auto want =
      reference->QueryRank(reference->Handle("rank_decision").value());
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got.value().rank_at_least_k, want.value().rank_at_least_k);
  EXPECT_TRUE(got.value().rank_at_least_k);
}

// --------------------------------------------- handoff: sampling families --

// Sampler internals do not cross the wire, so a moved sampling shard
// continues as frozen-prefix + fresh-sampler. That continuation is
// deterministic and placement-independent: the same handoff schedule must
// produce IDENTICAL answers on in-process, loopback, and mixed engines —
// and planted heavy hitters must still be recovered.
TEST(TopologyHandoffTest, SamplingHandoffIdenticalAcrossPlacements) {
  const uint64_t universe = 1 << 16;
  wbs::RandomTape tape(304);
  tape.set_logging(false);
  std::vector<uint64_t> planted;
  auto items = stream::PlantedHeavyHitterStream(universe, 30000, 3, 0.2,
                                                &tape, &planted);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  SketchConfig cfg = TestConfig(universe, 37);
  const std::vector<std::string> sketches = {"misra_gries", "robust_hh",
                                             "crhf_hh"};

  std::vector<std::vector<SketchSummary>> results;
  for (const BackendCase& placement : AllPlacements()) {
    auto client = MakeClient(sketches, cfg, 4, 2, placement.factory);
    ASSERT_TRUE(ReplayWithMidpoint(client.get(), s, 1024, [&] {
                  return client->MoveShard(2, InProcessBackendFactory());
                }).ok())
        << placement.name;
    ASSERT_TRUE(client->Finish().ok()) << placement.name;
    std::vector<SketchSummary> summaries;
    for (const std::string& name : sketches) {
      auto summary = client->RawSummary(client->Handle(name).value());
      ASSERT_TRUE(summary.ok()) << name << " on " << placement.name;
      summaries.push_back(std::move(summary).value());
    }
    results.push_back(std::move(summaries));
  }
  for (size_t p = 1; p < results.size(); ++p) {
    for (size_t i = 0; i < sketches.size(); ++i) {
      ExpectSummariesIdentical(results[p][i], results[0][i],
                               sketches[i] + " placement " +
                                   AllPlacements()[p].name);
    }
  }
  // Recall: every planted 20%-heavy item is still reported by the union of
  // frozen-prefix and fresh-sampler candidates (allow the same slack as
  // the no-handoff planted suite).
  int robust_misses = 0, crhf_misses = 0;
  for (size_t i = 1; i <= 2; ++i) {  // robust_hh, crhf_hh
    for (uint64_t id : planted) {
      bool found = false;
      for (const auto& wi : results[0][i].items) found |= wi.item == id;
      (i == 1 ? robust_misses : crhf_misses) += found ? 0 : 1;
    }
  }
  EXPECT_LE(robust_misses, 1);
  EXPECT_LE(crhf_misses, 1);
}

// ---------------------------------------------------------------- scale-out --

// Post-scale-out answers equal a single-topology reference merge: the
// linear families are bit-identical under ANY partitioning of the stream
// (state merges are sums), and eviction-free Misra-Gries stays exact.
TEST(TopologyScaleOutTest, MidIngestAddShardsPreservesLinearAnswers) {
  const uint64_t universe = 1 << 12;
  auto zipf = ZipfTurnstile(universe, 24000, 305);
  wbs::RandomTape tape(306);
  tape.set_logging(false);
  auto churn = stream::InsertDeleteChurnStream(universe, 150, 2500, &tape);
  SketchConfig cfg = TestConfig(universe, 41);

  for (const stream::TurnstileStream* s : {&zipf, &churn}) {
    auto reference =
        MakeClient({"ams_f2", "sis_l0"}, cfg, 4, 2, InProcessBackendFactory());
    ASSERT_TRUE(
        Replay(reference.get(), *s, 1024, ReplayChurn::kDisabled).ok());
    ASSERT_TRUE(reference->Finish().ok());

    for (const BackendCase& cell :
         {BackendCase{"inprocess", InProcessBackendFactory()},
          BackendCase{"loopback", LoopbackBackendFactory()}}) {
      auto grown = MakeClient({"ams_f2", "sis_l0"}, cfg, 4, 2,
                              InProcessBackendFactory());
      ASSERT_TRUE(ReplayWithMidpoint(grown.get(), *s, 1024, [&] {
                    return grown->AddShards(3, cell.factory);
                  }).ok());
      ASSERT_TRUE(grown->Finish().ok());
      EXPECT_EQ(grown->ingestor().num_shards(), 7u);

      for (const char* name : {"ams_f2", "sis_l0"}) {
        auto got = grown->QueryScalar(grown->Handle(name).value());
        auto want = reference->QueryScalar(reference->Handle(name).value());
        ASSERT_TRUE(got.ok() && want.ok()) << name;
        EXPECT_EQ(got.value().value, want.value().value)
            << name << " cells=" << cell.name;
        EXPECT_EQ(got.value().updates, want.value().updates) << name;
      }
    }
  }
}

TEST(TopologyScaleOutTest, EvictionFreeMisraGriesStaysExactAcrossScaleOut) {
  const uint64_t universe = 256;
  auto s = ZipfTurnstile(universe, 16000, 307);
  stream::FrequencyOracle truth(universe);
  for (const auto& u : s) truth.Add(u.item, u.delta);
  SketchConfig cfg = TestConfig(universe, 43);
  cfg.misra_gries.counters = 512;  // > universe: no eviction anywhere

  auto client = MakeClient({"misra_gries"}, cfg, 2, 0);
  ASSERT_TRUE(ReplayWithMidpoint(client.get(), s, 1024, [&] {
                return client->AddShards(2);
              }).ok());
  ASSERT_TRUE(client->Finish().ok());
  auto mg = client->Handle("misra_gries").value();
  for (const auto& [item, f] : truth.frequencies()) {
    auto point = client->QueryPoint(mg, item);
    ASSERT_TRUE(point.ok()) << item;
    EXPECT_DOUBLE_EQ(point.value().estimate, double(f)) << item;
  }
}

TEST(TopologyScaleOutTest, PlantedHeavyHittersRecoveredAcrossScaleOut) {
  const uint64_t universe = 1 << 16;
  wbs::RandomTape tape(308);
  tape.set_logging(false);
  std::vector<uint64_t> planted;
  auto items = stream::PlantedHeavyHitterStream(universe, 30000, 3, 0.2,
                                                &tape, &planted);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  SketchConfig cfg = TestConfig(universe, 45);
  auto client = MakeClient({"robust_hh", "crhf_hh"}, cfg, 4, 2);
  ASSERT_TRUE(ReplayWithMidpoint(client.get(), s, 1024, [&] {
                return client->AddShards(4);
              }).ok());
  ASSERT_TRUE(client->Finish().ok());
  int misses = 0;
  for (const char* name : {"robust_hh", "crhf_hh"}) {
    auto top = client->QueryTopK(client->Handle(name).value(), 1 << 20);
    ASSERT_TRUE(top.ok()) << name;
    for (uint64_t id : planted) {
      bool found = false;
      for (const auto& wi : top.value().items) found |= wi.item == id;
      misses += found ? 0 : 1;
    }
  }
  EXPECT_LE(misses, 2);
}

// ------------------------------------------------------ failure semantics --

TEST(TopologyFailureTest, UnserializableSketchLeavesTopologyUnchanged) {
  class OpaqueSketch final : public Sketch {
   public:
    const std::string& name() const override {
      static const std::string n = "topology_opaque";
      return n;
    }
    Status Update(const stream::TurnstileUpdate& u) override {
      net_ += u.delta;
      return Status::OK();
    }
    SketchSummary Summary() const override {
      SketchSummary s;
      s.sketch = "topology_opaque";
      s.has_scalar = true;
      s.scalar = double(net_);
      return s;
    }
    Status MergeFrom(const Sketch& other) override {
      net_ += static_cast<const OpaqueSketch&>(other).net_;
      return Status::OK();
    }
    uint64_t SpaceBits() const override { return 64; }

   private:
    int64_t net_ = 0;
  };
  static bool registered = [] {
    return SketchRegistry::Global()
        .Register("topology_opaque",
                  [](const SketchConfig&) {
                    return std::make_unique<OpaqueSketch>();
                  })
        .ok();
  }();
  ASSERT_TRUE(registered);

  auto client = MakeClient({"topology_opaque"}, TestConfig(1 << 10, 5), 2, 1,
                           InProcessBackendFactory());
  stream::TurnstileStream s{{1, 1}, {2, 1}, {3, 1}, {4, 1}};
  ASSERT_TRUE(client->Submit(s).ok());
  ASSERT_TRUE(client->Flush().ok());
  const uint64_t generation = client->Topology().generation;
  Status moved = client->MoveShard(0, InProcessBackendFactory());
  ASSERT_FALSE(moved.ok());
  EXPECT_EQ(moved.code(), Status::Code::kUnimplemented) << moved.ToString();
  EXPECT_EQ(client->Topology().generation, generation);
  // The engine keeps working after the failed op.
  ASSERT_TRUE(client->Submit(s).ok());
  ASSERT_TRUE(client->Finish().ok());
  auto scalar = client->QueryScalar(client->Handle("topology_opaque").value());
  ASSERT_TRUE(scalar.ok());
  EXPECT_DOUBLE_EQ(scalar.value().value, 8.0);
}

TEST(TopologyFailureTest, MoveOfNeverIngestedShardWorks) {
  // A shard with no published state moves as a fresh cell (no frames to
  // ship) and ingests correctly afterwards.
  SketchConfig cfg = TestConfig(1 << 10, 7);
  auto client = MakeClient({"ams_f2"}, cfg, 2, 0);
  ASSERT_TRUE(client->MoveShard(1, LoopbackBackendFactory()).ok());
  auto s = ZipfTurnstile(1 << 10, 4000, 309);
  ASSERT_TRUE(Replay(client.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(client->Finish().ok());
  auto reference = MakeClient({"ams_f2"}, cfg, 2, 0,
                              InProcessBackendFactory());
  ASSERT_TRUE(
      Replay(reference.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());
  auto got = client->QueryScalar(client->Handle("ams_f2").value());
  auto want = reference->QueryScalar(reference->Handle("ams_f2").value());
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got.value().value, want.value().value);
}

// --------------------------------------------------- live queries vs ops --

TEST(TopologyLiveTest, QueriesKeepAnsweringThroughTopologyOps) {
  const uint64_t universe = 1 << 12;
  auto s = ZipfTurnstile(universe, 120000, 310);
  SketchConfig cfg = TestConfig(universe, 51);
  auto client = MakeClient({"ams_f2", "sis_l0"}, cfg, 4, 2);
  auto f2 = client->Handle("ams_f2").value();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> query_errors{0};
  uint64_t last_updates = 0;
  std::atomic<bool> monotone{true};
  std::thread querier([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = client->QueryScalar(f2);
      if (!r.ok()) {
        ++query_errors;
        continue;
      }
      if (r.value().updates < last_updates) monotone = false;
      last_updates = r.value().updates;
    }
  });

  const size_t batch = 2048;
  const size_t batches = (s.size() + batch - 1) / batch;
  size_t index = 0;
  for (size_t off = 0; off < s.size(); off += batch, ++index) {
    if (index == batches / 4) {
      ASSERT_TRUE(client->AddShards(2).ok());
    }
    if (index == batches / 2) {
      ASSERT_TRUE(client->MoveShard(0, LoopbackBackendFactory()).ok());
    }
    if (index == 3 * batches / 4) {
      ASSERT_TRUE(client->MoveShard(5, InProcessBackendFactory()).ok());
    }
    ASSERT_TRUE(
        client->Submit(s.data() + off, std::min(batch, s.size() - off)).ok());
  }
  ASSERT_TRUE(client->Flush().ok());
  stop.store(true, std::memory_order_relaxed);
  querier.join();
  ASSERT_TRUE(client->Finish().ok());
  EXPECT_EQ(query_errors.load(), 0u);
  EXPECT_TRUE(monotone.load());
  EXPECT_EQ(client->ingestor().num_shards(), 6u);
  EXPECT_EQ(client->Topology().generation, 4u);

  // Final answer equals a single-topology reference (linear family).
  auto reference = MakeClient({"ams_f2", "sis_l0"}, cfg, 1, 0,
                              InProcessBackendFactory());
  ASSERT_TRUE(
      Replay(reference.get(), s, 4096, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());
  auto got = client->QueryScalar(f2);
  auto want = reference->QueryScalar(reference->Handle("ams_f2").value());
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got.value().value, want.value().value);
  EXPECT_EQ(got.value().updates, uint64_t(s.size()));
}

}  // namespace
}  // namespace wbs::engine
