// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Cross-module edge cases and failure injection: boundary parameters,
// degenerate inputs, and graceful-failure paths that the per-module suites
// do not reach.

#include <gtest/gtest.h>

#include "common/random.h"
#include "counter/branching.h"
#include "counter/morris.h"
#include "crypto/crhf.h"
#include "distinct/l0_estimator.h"
#include "heavyhitters/misra_gries.h"
#include "hhh/domain.h"
#include "linalg/matrix_zq.h"
#include "sampling/bernoulli.h"
#include "strings/pattern_match.h"

namespace wbs {
namespace {

TEST(EdgeCaseTest, IntKernelOverflowReturnsNullopt) {
  // A 60 x 61 +-1 matrix drives Bareiss intermediates past 128 bits; the
  // kernel routine must fail CLEANLY (nullopt), never silently corrupt.
  wbs::RandomTape tape(1);
  std::vector<std::vector<int64_t>> m(60, std::vector<int64_t>(61));
  for (auto& row : m) {
    for (auto& v : row) v = tape.SignBit();
  }
  auto x = linalg::ExactIntegerKernelVector(m);
  if (x.has_value()) {
    // If it DID succeed, the solution must be exact.
    for (size_t i = 0; i < 60; ++i) {
      __int128 dot = 0;
      for (size_t j = 0; j < 61; ++j) dot += __int128(m[i][j]) * (*x)[j];
      EXPECT_EQ(int64_t(dot), 0) << i;
    }
  }
  SUCCEED();  // either clean failure or exact success is acceptable
}

TEST(EdgeCaseTest, IntKernelZeroMatrix) {
  std::vector<std::vector<int64_t>> m(2, std::vector<int64_t>(3, 0));
  auto x = linalg::ExactIntegerKernelVector(m);
  ASSERT_TRUE(x.has_value());
  bool nonzero = false;
  for (int64_t v : *x) nonzero |= v != 0;
  EXPECT_TRUE(nonzero);  // anything nonzero is in the kernel
}

TEST(EdgeCaseTest, MatrixZqWideKernel) {
  // 2 x 8: kernel dimension 6; any returned vector must verify.
  wbs::RandomTape tape(2);
  linalg::MatrixZq m(2, 8, 10007);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 8; ++j) m.At(i, j) = tape.UniformInt(10007);
  }
  auto x = m.KernelVector();
  ASSERT_TRUE(x.has_value());
  for (uint64_t v : m.Apply(*x)) EXPECT_EQ(v, 0u);
}

TEST(EdgeCaseTest, MatrixZqOneByOne) {
  linalg::MatrixZq z(1, 1, 7);
  EXPECT_EQ(z.Rank(), 0u);
  ASSERT_TRUE(z.KernelVector().has_value());
  z.At(0, 0) = 3;
  EXPECT_EQ(z.Rank(), 1u);
  EXPECT_FALSE(z.KernelVector().has_value());
}

TEST(EdgeCaseTest, MisraGriesSingleCounter) {
  hh::MisraGries mg(1);
  for (int i = 0; i < 100; ++i) mg.Add(uint64_t(i % 2));
  EXPECT_LE(mg.tracked(), 1u);
  // Error bound m/2 still holds trivially.
  EXPECT_LE(double(mg.Estimate(0)), 100.0);
}

TEST(EdgeCaseTest, SpaceSavingSingleCounter) {
  hh::SpaceSaving ss(1);
  for (int i = 0; i < 50; ++i) ss.Add(7);
  ss.Add(9);
  // The replacement inherits the previous count + 1 (overestimate).
  EXPECT_EQ(ss.Estimate(9), 51u);
}

TEST(EdgeCaseTest, MorrisZeroLengthStream) {
  wbs::RandomTape tape(3);
  counter::MorrisCounter c(0.5, 0.25, &tape);
  EXPECT_DOUBLE_EQ(c.Query(), 0.0);
  EXPECT_GE(c.SpaceBits(), 1u);
}

TEST(EdgeCaseTest, TruncatedCounterOneBitMantissa) {
  counter::TruncatedCounter c(1);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(c.Update({1}).ok());
  EXPECT_LE(c.Query(), 4.0);  // stalls almost immediately
}

TEST(EdgeCaseTest, SisL0UniverseSmallerThanDerivedChunk) {
  // Tiny universe: Derive must still produce >= 1 chunk and work.
  auto p = distinct::SisL0Params::Derive(4, 0.9, 0.3, 10);
  EXPECT_GE(p.num_chunks, 1u);
  crypto::RandomOracle oracle(4);
  distinct::SisL0Estimator alg(p, oracle, 0);
  ASSERT_TRUE(alg.Update({3, 1}).ok());
  EXPECT_GE(alg.Query(), 1.0);
}

TEST(EdgeCaseTest, HierarchySingleLevel) {
  hhh::Hierarchy h(4, 8);  // bits_per_level > universe_bits: height 1
  EXPECT_EQ(h.height(), 1);
  EXPECT_EQ(h.PrefixOf(13, 1).value, 0u);  // root
}

TEST(EdgeCaseTest, HierarchyDeepShiftSaturates) {
  hhh::Hierarchy h = hhh::Hierarchy::Binary(uint64_t{1} << 40);
  // Levels beyond 64-bit shifts must clamp to 0, not UB.
  EXPECT_EQ(h.PrefixOf(~uint64_t{0}, 100).value, 0u);
}

TEST(EdgeCaseTest, PatternIsWholePeriodOneChar) {
  // 1-character pattern, period 1: matches everywhere.
  wbs::RandomTape tape(5);
  crypto::DlogParams g = crypto::DlogParams::Generate(30, &tape);
  strings::PeriodicPatternMatcher alg("a", 1, g, 8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(alg.Update({uint64_t('a'), 8}).ok());
  }
  EXPECT_EQ(alg.Query(), (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(EdgeCaseTest, PatternLongerThanText) {
  wbs::RandomTape tape(6);
  crypto::DlogParams g = crypto::DlogParams::Generate(30, &tape);
  strings::PeriodicPatternMatcher alg("abcabc", 3, g, 8);
  for (char c : std::string("abc")) {
    ASSERT_TRUE(alg.Update({uint64_t(uint8_t(c)), 8}).ok());
  }
  EXPECT_TRUE(alg.Query().empty());
}

TEST(EdgeCaseTest, DlogMinimumGroupSize) {
  wbs::RandomTape tape(7);
  crypto::DlogParams p = crypto::DlogParams::Generate(17, &tape);
  EXPECT_TRUE(wbs::IsPrime(p.p));
  crypto::DlogFingerprint f(p);
  f.AppendChar('x', 8);
  EXPECT_NE(f.value(), 1u);
}

TEST(EdgeCaseTest, CrhfMinimumWidth) {
  crypto::Sha256Crhf h(1, 8);
  uint64_t v = h.HashU64(123);
  EXPECT_LT(v, 256u);
}

TEST(EdgeCaseTest, KmvKOne) {
  // k = 1 is degenerate for the (k-1)/kth-minimum estimator: the numerator
  // vanishes. The implementation must stay well-defined (0, not NaN/crash).
  wbs::RandomTape tape(8);
  distinct::KmvDistinct alg(1, &tape);
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(alg.Update({i}).ok());
  EXPECT_DOUBLE_EQ(alg.Query(), 0.0);
}

TEST(EdgeCaseTest, BernoulliSamplerExtremes) {
  wbs::RandomTape tape(9);
  sampling::BernoulliSampler always(1.0, &tape), never(0.0, &tape);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(always.Offer());
    EXPECT_FALSE(never.Offer());
  }
  EXPECT_EQ(always.kept(), 50u);
  EXPECT_EQ(never.kept(), 0u);
}

}  // namespace
}  // namespace wbs
