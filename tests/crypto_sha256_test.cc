// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// SHA-256 against the FIPS 180-4 / NIST CAVP known-answer vectors, plus the
// incremental interface and the RandomOracle built on top.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "crypto/random_oracle.h"
#include "crypto/sha256.h"

namespace wbs::crypto {
namespace {

std::string HexOf(const std::string& msg) {
  return DigestToHex(Sha256::Hash(msg));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexOf(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexOf("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HexOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, ExactlyOneBlock) {
  // 64 bytes: padding spills into a second block.
  std::string m(64, 'a');
  EXPECT_EQ(HexOf(m),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestToHex(h.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(DigestToHex(h.Finalize()), HexOf(msg)) << "split=" << split;
  }
}

TEST(Sha256Test, ResetReuses) {
  Sha256 h;
  h.Update("garbage");
  (void)h.Finalize();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(DigestToHex(h.Finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, UpdateU64BigEndian) {
  Sha256 a, b;
  a.UpdateU64(0x0102030405060708ULL);
  const uint8_t bytes[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  b.Update(bytes, 8);
  EXPECT_EQ(DigestToHex(a.Finalize()), DigestToHex(b.Finalize()));
}

TEST(Sha256Test, Hash64IsDigestPrefix) {
  Digest256 d = Sha256::Hash("abc");
  uint64_t expect = 0;
  for (int i = 0; i < 8; ++i) expect = (expect << 8) | d[i];
  EXPECT_EQ(Sha256::Hash64("abc", 3), expect);
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  std::set<std::string> digests;
  for (int i = 0; i < 200; ++i) {
    digests.insert(HexOf("msg" + std::to_string(i)));
  }
  EXPECT_EQ(digests.size(), 200u);
}

TEST(RandomOracleTest, Consistency) {
  RandomOracle ro(42);
  EXPECT_EQ(ro.Query(1, 2), ro.Query(1, 2));
  EXPECT_EQ(ro.FieldElement(3, 4, 10007), ro.FieldElement(3, 4, 10007));
}

TEST(RandomOracleTest, DomainSeparation) {
  RandomOracle ro(42);
  EXPECT_NE(ro.Query(1, 2), ro.Query(2, 1));
  EXPECT_NE(ro.Query(1, 2), ro.Query(1, 3));
}

TEST(RandomOracleTest, InstanceSeparation) {
  RandomOracle a(1), b(2);
  EXPECT_NE(a.Query(0, 0), b.Query(0, 0));
}

TEST(RandomOracleTest, FieldElementInRange) {
  RandomOracle ro(7);
  for (uint64_t q : std::vector<uint64_t>{2, 97, 1000003, (uint64_t{1} << 61) - 1}) {
    for (uint64_t i = 0; i < 64; ++i) {
      EXPECT_LT(ro.FieldElement(5, i, q), q);
    }
  }
}

TEST(RandomOracleTest, FieldElementRoughlyUniform) {
  RandomOracle ro(9);
  const uint64_t q = 10;
  std::vector<int> counts(q, 0);
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    ++counts[ro.FieldElement(1, uint64_t(i), q)];
  }
  for (uint64_t v = 0; v < q; ++v) {
    EXPECT_NEAR(double(counts[v]) / trials, 0.1, 0.03) << v;
  }
}

TEST(RandomOracleTest, PublicReproducibility) {
  // The adversary can instantiate its own copy and get identical answers —
  // the oracle is public, exactly as the model demands.
  RandomOracle alg_side(1234), adversary_side(1234);
  for (uint64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(alg_side.Query(7, i), adversary_side.Query(7, i));
  }
}

}  // namespace
}  // namespace wbs::crypto
