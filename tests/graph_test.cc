// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Vertex neighborhood identification (Theorems 1.3 / 1.4).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "graph/neighborhood.h"

namespace wbs::graph {
namespace {

stream::VertexArrival V(uint64_t v, std::vector<uint64_t> nbrs) {
  return {v, std::move(nbrs)};
}

TEST(CrhfNeighborhoodTest, IdenticalNeighborhoodsGrouped) {
  wbs::RandomTape tape(1);
  CrhfNeighborhoodId alg(8, 1 << 16, &tape);
  ASSERT_TRUE(alg.Update(V(0, {3, 4})).ok());
  ASSERT_TRUE(alg.Update(V(1, {4, 3})).ok());   // same set, different order
  ASSERT_TRUE(alg.Update(V(2, {3})).ok());
  auto groups = alg.Query();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<uint64_t>{0, 1}));
}

TEST(CrhfNeighborhoodTest, DuplicateNeighborsCanonicalized) {
  wbs::RandomTape tape(2);
  CrhfNeighborhoodId alg(8, 1 << 16, &tape);
  ASSERT_TRUE(alg.Update(V(0, {3, 3, 4})).ok());
  ASSERT_TRUE(alg.Update(V(1, {3, 4})).ok());
  EXPECT_EQ(alg.Query().size(), 1u);
}

TEST(CrhfNeighborhoodTest, EmptyNeighborhoodsMatch) {
  wbs::RandomTape tape(3);
  CrhfNeighborhoodId alg(8, 1 << 16, &tape);
  ASSERT_TRUE(alg.Update(V(0, {})).ok());
  ASSERT_TRUE(alg.Update(V(5, {})).ok());
  auto groups = alg.Query();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<uint64_t>{0, 5}));
}

TEST(CrhfNeighborhoodTest, RejectsOutOfRange) {
  wbs::RandomTape tape(4);
  CrhfNeighborhoodId alg(8, 1 << 16, &tape);
  EXPECT_FALSE(alg.Update(V(8, {})).ok());
  EXPECT_FALSE(alg.Update(V(0, {9})).ok());
}

// Random-graph agreement sweep: CRHF grouping must equal exact grouping.
class NeighborhoodAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NeighborhoodAgreementTest, CrhfMatchesExact) {
  const uint64_t n = GetParam();
  wbs::RandomTape tape(n);
  CrhfNeighborhoodId crhf_alg(n, 1 << 16, &tape);
  ExactNeighborhoodId exact_alg(n);
  // Random graph with a few duplicated neighborhoods planted.
  for (uint64_t v = 0; v < n; ++v) {
    std::vector<uint64_t> nbrs;
    uint64_t pattern = v % 5 == 0 ? 0 : v;  // every 5th vertex shares a set
    uint64_t s = pattern * 0x9e3779b97f4a7c15ULL + 12345;
    for (int d = 0; d < 6; ++d) {
      nbrs.push_back(wbs::SplitMix64(&s) % n);
    }
    ASSERT_TRUE(crhf_alg.Update({v, nbrs}).ok());
    ASSERT_TRUE(exact_alg.Update({v, nbrs}).ok());
  }
  EXPECT_EQ(crhf_alg.Query(), exact_alg.Query());
}

INSTANTIATE_TEST_SUITE_P(Sizes, NeighborhoodAgreementTest,
                         ::testing::Values(16, 64, 256, 1024));

TEST(NeighborhoodSpaceTest, CrhfLinearExactQuadratic) {
  // Theorem 1.3 vs Theorem 1.4: O(n log n) vs Theta(n^2).
  const uint64_t n = 512;
  wbs::RandomTape tape(7);
  CrhfNeighborhoodId crhf_alg(n, 1 << 16, &tape);
  ExactNeighborhoodId exact_alg(n);
  for (uint64_t v = 0; v < n; ++v) {
    std::vector<uint64_t> nbrs = {v % 7, (v * 3) % n};
    ASSERT_TRUE(crhf_alg.Update({v, nbrs}).ok());
    ASSERT_TRUE(exact_alg.Update({v, nbrs}).ok());
  }
  EXPECT_GE(exact_alg.SpaceBits(), n * n);
  EXPECT_LE(crhf_alg.SpaceBits(), n * 100);
  EXPECT_LT(crhf_alg.SpaceBits() * 4, exact_alg.SpaceBits());
}

TEST(OrEqualityGraphTest, EqualStringsGiveEqualNeighborhoods) {
  // The Theorem 1.4 reduction: u_i ~ v_i identical iff x_i = y_i.
  const uint64_t n = 16;
  std::vector<std::vector<uint8_t>> x = {
      {1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0},
      {1, 1, 0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1, 0, 0}};
  std::vector<std::vector<uint8_t>> y = x;
  y[1][0] ^= 1;  // second pair differs
  auto updates = BuildOrEqualityGraph(x, y, n);
  wbs::RandomTape tape(8);
  CrhfNeighborhoodId alg(3 * n, 1 << 16, &tape);
  for (const auto& u : updates) ASSERT_TRUE(alg.Update(u).ok());
  auto groups = alg.Query();
  // Exactly one group: {u_0, v_0} = {0, 16}.
  bool pair0 = false;
  for (const auto& g : groups) {
    if (std::find(g.begin(), g.end(), 0u) != g.end()) {
      EXPECT_NE(std::find(g.begin(), g.end(), 16u), g.end());
      pair0 = true;
    }
    // u_1 = 1 and v_1 = 17 must NOT be grouped together.
    bool has1 = std::find(g.begin(), g.end(), 1u) != g.end();
    bool has17 = std::find(g.begin(), g.end(), 17u) != g.end();
    EXPECT_FALSE(has1 && has17);
  }
  EXPECT_TRUE(pair0);
}

TEST(OrEqualityGraphTest, StreamShape) {
  const uint64_t n = 8;
  std::vector<std::vector<uint8_t>> x(2, std::vector<uint8_t>(n, 1));
  std::vector<std::vector<uint8_t>> y(2, std::vector<uint8_t>(n, 0));
  auto updates = BuildOrEqualityGraph(x, y, n);
  ASSERT_EQ(updates.size(), 4u);  // u_0, v_0, u_1, v_1
  EXPECT_EQ(updates[0].neighbors.size(), n);  // x all ones
  EXPECT_TRUE(updates[1].neighbors.empty());  // y all zeros
  for (uint64_t nb : updates[0].neighbors) {
    EXPECT_GE(nb, 2 * n);  // r-vertices live at 2n + j
    EXPECT_LT(nb, 3 * n);
  }
}

TEST(ExactNeighborhoodTest, GroupsAreExact) {
  ExactNeighborhoodId alg(8);
  ASSERT_TRUE(alg.Update(V(0, {1, 2})).ok());
  ASSERT_TRUE(alg.Update(V(3, {2, 1})).ok());
  ASSERT_TRUE(alg.Update(V(4, {1})).ok());
  ASSERT_TRUE(alg.Update(V(5, {1})).ok());
  auto groups = alg.Query();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<uint64_t>{0, 3}));
  EXPECT_EQ(groups[1], (std::vector<uint64_t>{4, 5}));
}

TEST(ExactNeighborhoodTest, ReArrivalOverwrites) {
  // Vertex-arrival semantics: the latest arrival defines the neighborhood.
  ExactNeighborhoodId alg(8);
  ASSERT_TRUE(alg.Update(V(0, {1})).ok());
  ASSERT_TRUE(alg.Update(V(0, {2})).ok());
  ASSERT_TRUE(alg.Update(V(3, {2})).ok());
  auto groups = alg.Query();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<uint64_t>{0, 3}));
}

TEST(CrhfNeighborhoodTest, HashWidthScalesWithBudget) {
  wbs::RandomTape t1(9), t2(10);
  CrhfNeighborhoodId weak(1024, 1 << 8, &t1);
  CrhfNeighborhoodId strong(1024, uint64_t{1} << 24, &t2);
  EXPECT_LT(weak.hash_bits(), strong.hash_bits());
}

}  // namespace
}  // namespace wbs::graph
