// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The engine's observability surface (PR 6): the engine.* metrics registry
// and its instrumentation sites, the control-plane span tracer, and the
// dump formats. The load-bearing assertions are exact reconciliations —
// the per-shard updates_total counters must sum to exactly what was
// submitted, valve rejections must match the TrySubmit failures the
// producer saw, histogram bucket counts must sum to the histogram count —
// because a metric that drifts from the quantity it claims to measure is
// worse than no metric. Runs on the env-selected backend
// (WBS_ENGINE_BACKEND) and under WBS_ENGINE_TOPOLOGY=churn, so the same
// keys must be present across inprocess / loopback / mixed placements and
// across live handoffs. The dump-while-ingesting test doubles as the TSan
// probe for the relaxed-atomic snapshot path.

#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/client.h"
#include "engine/metrics.h"
#include "engine/sharded_ingestor.h"
#include "engine/trace.h"
#include "stream/workload.h"

#include "engine_test_util.h"

namespace wbs::engine {
namespace {

SketchConfig TestConfig(uint64_t universe, uint64_t seed) {
  return SketchConfig{}.WithUniverse(universe).WithSeed(seed);
}

stream::TurnstileStream ZipfTurnstile(uint64_t universe, size_t n,
                                      uint64_t seed) {
  wbs::RandomTape tape(seed);
  tape.set_logging(false);
  auto items = stream::ZipfStream(universe, n, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  return s;
}

uint64_t SumMatching(const MetricsSnapshot& snap, const std::string& prefix,
                     const std::string& suffix) {
  uint64_t sum = 0;
  for (const auto& sample : snap.samples) {
    if (sample.name.size() < prefix.size() + suffix.size()) continue;
    if (sample.name.compare(0, prefix.size(), prefix) != 0) continue;
    if (sample.name.compare(sample.name.size() - suffix.size(),
                            suffix.size(), suffix) != 0) {
      continue;
    }
    sum += sample.value;
  }
  return sum;
}

// ---------------------------------------------- primitive-level invariants --

TEST(MetricsPrimitivesTest, HistogramBucketInvariants) {
  Histogram h;
  // One value per bucket boundary region, plus extremes.
  const uint64_t values[] = {0, 1, 2, 3, 7, 8, 1023, 1024, 1'000'000,
                             ~uint64_t{0}};
  uint64_t want_sum = 0;
  for (uint64_t v : values) {
    h.Record(v);
    want_sum += v;
  }
  EXPECT_EQ(h.Count(), std::size(values));
  EXPECT_EQ(h.Sum(), want_sum);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    bucket_total += h.BucketCount(i);
  }
  EXPECT_EQ(bucket_total, h.Count());  // every value lands in exactly 1 bucket
  // Bucket membership: 0 in bucket 0, [2^(i-1), 2^i) in bucket i.
  EXPECT_EQ(h.BucketCount(0), 1u);                      // the single 0
  EXPECT_EQ(h.BucketCount(1), 1u);                      // 1
  EXPECT_EQ(h.BucketCount(2), 2u);                      // 2, 3
  EXPECT_EQ(h.BucketCount(Histogram::kBuckets - 1), 1u);  // ~0 overflows
  // Quantiles are bucket upper bounds and are monotone in q.
  const MetricSample sample = HistogramSample("h", h);
  EXPECT_GT(sample.ApproxQuantile(0.5), 0u);
  EXPECT_LE(sample.ApproxQuantile(0.5), sample.ApproxQuantile(0.99));
}

TEST(MetricsPrimitivesTest, RegistrySnapshotCarriesEveryInstrument) {
  MetricsRegistry registry;
  Counter* c = registry.NewCounter("test.counter_total");
  Gauge* g = registry.NewGauge("test.gauge");
  Histogram* h = registry.NewHistogram("test.hist_us");
  c->Inc(7);
  g->Set(-3);
  h->Record(100);
  auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  MetricsSnapshot snap;
  snap.samples = samples;
  EXPECT_EQ(snap.Value("test.counter_total"), 7u);
  ASSERT_NE(snap.Find("test.gauge"), nullptr);
  EXPECT_EQ(snap.Find("test.gauge")->gauge_value(), -3);
  ASSERT_NE(snap.Find("test.hist_us"), nullptr);
  EXPECT_EQ(snap.Find("test.hist_us")->count, 1u);
  EXPECT_EQ(snap.Find("test.hist_us")->sum, 100u);
}

// -------------------------------------------------- exact reconciliation --

TEST(EngineMetricsTest, ShardCountersReconcileExactlyWithSubmissions) {
  const uint64_t universe = 1 << 12;
  const size_t n = 20000;
  auto s = ZipfTurnstile(universe, n, 401);
  auto client = MakeClient({"ams_f2", "sis_l0"}, TestConfig(universe, 41),
                           /*shards=*/4, /*threads=*/2);
  ASSERT_TRUE(Replay(client.get(), s).ok());
  ASSERT_TRUE(client->Flush().ok());

  const auto snap = client->Metrics();
  // Every submitted update landed on exactly one shard.
  EXPECT_EQ(SumMatching(snap, "engine.shard.", ".updates_total"), n);
  EXPECT_EQ(snap.Value("engine.updates_submitted_total"), n);
  // Sessions: everything went through the shared session 0.
  EXPECT_EQ(SumMatching(snap, "engine.session.", ".submits_total"),
            (n + 1023) / 1024);  // Replay()'s batch size
  // Nothing in flight after Flush.
  ASSERT_NE(snap.Find("engine.inflight_tickets"), nullptr);
  EXPECT_EQ(snap.Find("engine.inflight_tickets")->gauge_value(), 0);
  EXPECT_EQ(snap.Find("engine.inflight_bytes")->gauge_value(), 0);
  EXPECT_EQ(snap.Find("engine.valve.waiters")->gauge_value(), 0);
  EXPECT_EQ(SumMatching(snap, "engine.session.", ".tickets_outstanding"), 0u);

  // Apply histograms: batches_total recordings in each, bucket sums match.
  for (const auto& sample : snap.samples) {
    if (sample.kind != MetricKind::kHistogram) continue;
    uint64_t bucket_total = 0;
    for (uint64_t b : sample.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, sample.count) << sample.name;
  }
  const uint64_t batches =
      SumMatching(snap, "engine.shard.", ".batches_total");
  EXPECT_GT(batches, 0u);

  // Backend-sourced per-shard samples are present for every current shard
  // regardless of placement (inprocess / loopback / mixed).
  const size_t shards = client->ingestor().num_shards();
  for (size_t shard = 0; shard < shards; ++shard) {
    const std::string prefix = "engine.shard." + std::to_string(shard) + ".";
    EXPECT_NE(snap.Find(prefix + "epoch"), nullptr) << prefix;
    EXPECT_NE(snap.Find(prefix + "snapshot_lag_updates"), nullptr) << prefix;
  }
  ASSERT_TRUE(client->Finish().ok());
}

TEST(EngineMetricsTest, ValveRejectionCounterMatchesTrySubmitFailures) {
  const uint64_t universe = 1 << 10;
  ClientOptions opts;
  opts.ingest.num_shards = 2;
  opts.ingest.num_threads = 1;
  opts.ingest.max_inflight_tickets = 2;  // tiny valve: rejections guaranteed
  opts.ingest.sketches = {"ams_f2"};
  opts.ingest.config = TestConfig(universe, 43);
  opts.ingest.backend = BackendFactoryFromEnv();
  auto client_or = Client::Create(opts);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();

  auto s = ZipfTurnstile(universe, 50000, 403);
  uint64_t rejected = 0, accepted = 0;
  for (size_t off = 0; off < s.size(); off += 512) {
    auto t = client->TrySubmit(s.data() + off,
                               std::min<size_t>(512, s.size() - off));
    if (t.ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(t.status().code(), Status::Code::kResourceExhausted);
      ++rejected;
    }
  }
  ASSERT_TRUE(client->Flush().ok());
  const auto snap = client->Metrics();
  EXPECT_EQ(SumMatching(snap, "engine.session.", ".try_rejections_total"),
            rejected);
  EXPECT_EQ(SumMatching(snap, "engine.session.", ".submits_total"), accepted);
  EXPECT_EQ(SumMatching(snap, "engine.shard.", ".updates_total"),
            accepted > 0 ? snap.Value("engine.updates_submitted_total") : 0);
  ASSERT_TRUE(client->Finish().ok());
}

TEST(EngineMetricsTest, PerSessionCountersSplitByProducer) {
  const uint64_t universe = 1 << 10;
  auto client = MakeClient({"ams_f2"}, TestConfig(universe, 47),
                           /*shards=*/2, /*threads=*/2);
  auto session = client->OpenSession();
  ASSERT_TRUE(session.ok());
  auto s = ZipfTurnstile(universe, 4096, 405);
  // 3 batches on the dedicated session, 1 on the shared session 0.
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        client->Submit(session.value(), s.data() + i * 1024, 1024).ok());
  }
  ASSERT_TRUE(client->Submit(s.data() + 3 * 1024, 1024).ok());
  ASSERT_TRUE(client->Flush().ok());
  const auto snap = client->Metrics();
  EXPECT_EQ(snap.Value("engine.session.0.submits_total"), 1u);
  EXPECT_EQ(snap.Value("engine.session.1.submits_total"), 3u);
  ASSERT_TRUE(client->Finish().ok());
}

// ----------------------------------------------------- runtime off switch --

TEST(EngineMetricsTest, DisabledEngineStillServesDerivedSamples) {
  const uint64_t universe = 1 << 10;
  ClientOptions opts;
  opts.ingest.num_shards = 2;
  opts.ingest.num_threads = 1;
  opts.ingest.metrics_enabled = false;
  opts.ingest.sketches = {"ams_f2"};
  opts.ingest.config = TestConfig(universe, 53);
  opts.ingest.backend = BackendFactoryFromEnv();
  auto client_or = Client::Create(opts);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();

  auto s = ZipfTurnstile(universe, 4096, 407);
  ASSERT_TRUE(Replay(client.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(client->Flush().ok());
  const auto snap = client->Metrics();
  // No registered engine.* instruments...
  EXPECT_EQ(snap.Find("engine.session.0.submits_total"), nullptr);
  EXPECT_EQ(snap.Find("engine.shard.0.updates_total"), nullptr);
  // ...but derived and backend-sourced samples still report.
  EXPECT_EQ(snap.Value("engine.updates_submitted_total"), s.size());
  EXPECT_NE(snap.Find("engine.topology.num_shards"), nullptr);
  EXPECT_NE(snap.Find("engine.shard.0.epoch"), nullptr);
  ASSERT_TRUE(client->Finish().ok());
}

// ------------------------------------------------------------ dump formats --

TEST(EngineMetricsTest, DumpFormatsRenderEverySample) {
  const uint64_t universe = 1 << 10;
  auto client = MakeClient({"ams_f2"}, TestConfig(universe, 59),
                           /*shards=*/2, /*threads=*/1);
  auto s = ZipfTurnstile(universe, 4096, 409);
  ASSERT_TRUE(Replay(client.get(), s).ok());
  ASSERT_TRUE(client->Flush().ok());

  std::ostringstream jsonl;
  client->DumpMetrics(jsonl, MetricsDumpFormat::kJsonl);
  size_t lines = 0;
  std::string line;
  std::istringstream in(jsonl.str());
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"metric\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"type\":"), std::string::npos) << line;
  }
  EXPECT_GE(lines, client->Metrics().samples.size());

  std::ostringstream table;
  client->DumpMetrics(table, MetricsDumpFormat::kTable);
  EXPECT_NE(table.str().find("engine.shard.0.updates_total"),
            std::string::npos);
  ASSERT_TRUE(client->Finish().ok());
}

// ------------------------------------------------- dump while ingesting --

// Metrics(), DumpMetrics(), and TraceSpans() run concurrently with
// producers, workers, and a topology change — the TSan build of this test
// is the race probe for the relaxed-atomic snapshot path (and the
// dump-while-moving backend pointer stability).
TEST(EngineMetricsTest, SnapshotWhileIngestingAndResharding) {
  const uint64_t universe = 1 << 12;
  auto client = MakeClient({"ams_f2", "sis_l0"}, TestConfig(universe, 61),
                           /*shards=*/4, /*threads=*/2);
  auto s = ZipfTurnstile(universe, 60000, 411);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> dumps{0};
  std::thread dumper([&] {
    std::ostringstream sink;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = client->Metrics();
      // Histogram reads race in-flight Record() calls; the per-sample
      // invariant that survives relaxed tearing: quantiles never exceed
      // the overflow bound and bucket sums never exceed count+in-flight.
      for (const auto& sample : snap.samples) {
        if (sample.kind == MetricKind::kHistogram) {
          (void)sample.ApproxQuantile(0.99);
        }
      }
      client->DumpMetrics(sink, MetricsDumpFormat::kJsonl);
      (void)client->TraceSpans();
      sink.str("");
      ++dumps;
    }
  });

  std::thread producer([&] {
    for (size_t off = 0; off < s.size(); off += 1024) {
      if (!client->Submit(s.data() + off,
                          std::min<size_t>(1024, s.size() - off))
               .ok()) {
        return;
      }
    }
  });
  // A live topology change while both race: backend sample sources move.
  ASSERT_TRUE(client->AddShards(1).ok());
  producer.join();
  ASSERT_TRUE(client->Flush().ok());
  stop.store(true, std::memory_order_relaxed);
  dumper.join();
  EXPECT_GT(dumps.load(), 0u);

  const auto snap = client->Metrics();
  EXPECT_EQ(SumMatching(snap, "engine.shard.", ".updates_total"), s.size());
  ASSERT_TRUE(client->Finish().ok());
}

// ------------------------------------------------------------ span tracer --

TEST(TracerTest, SpansNestAndEvictOldestAtCapacity) {
  Tracer tracer(/*capacity=*/4);
  {
    auto parent = tracer.StartSpan("op");
    auto child = tracer.StartSpan("op.phase", parent.id());
    child.Attr("bytes", 128);
    child.End();
    parent.Attr("shard", 3);
    parent.End();
  }
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Children record at End(), before their parent.
  EXPECT_EQ(spans[0].name, "op.phase");
  EXPECT_EQ(spans[1].name, "op");
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[0].Attr("bytes"), 128u);
  EXPECT_EQ(spans[1].Attr("shard"), 3u);
  EXPECT_EQ(spans[1].Attr("missing", 77), 77u);

  for (int i = 0; i < 10; ++i) {
    tracer.StartSpan("filler").End();
  }
  spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);  // bounded ring: oldest evicted
  for (const auto& span : spans) EXPECT_EQ(span.name, "filler");
}

TEST(TracerTest, EngineRecordsTopologySpans) {
  const uint64_t universe = 1 << 10;
  auto client = MakeClient({"ams_f2"}, TestConfig(universe, 67),
                           /*shards=*/2, /*threads=*/1);
  auto s = ZipfTurnstile(universe, 4096, 413);
  ASSERT_TRUE(Replay(client.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(client->Flush().ok());
  ASSERT_TRUE(client->AddShards(1).ok());
  ASSERT_TRUE(client->MoveShard(0, InProcessBackendFactory()).ok());

  bool saw_add = false;
  TraceSpan move;
  uint64_t flush_us = 0, serialize_us = 0, import_us = 0;
  const auto spans = client->TraceSpans();
  for (const auto& span : spans) {
    if (span.name == "add_shards") saw_add = true;
    if (span.name == "move_shard") move = span;
  }
  for (const auto& span : spans) {
    if (move.id != 0 && span.parent == move.id) {
      if (span.name == "move_shard.flush") flush_us = span.duration_us;
      if (span.name == "move_shard.serialize") {
        serialize_us = span.duration_us;
      }
      if (span.name == "move_shard.import") import_us = span.duration_us;
    }
  }
  EXPECT_TRUE(saw_add);
  ASSERT_EQ(move.name, "move_shard");
  EXPECT_GT(move.Attr("state_bytes"), 0u);
  // The spans are the single source of handoff phase timings: each phase
  // child must be present, and the parent covers them all.
  EXPECT_GE(move.duration_us, flush_us + serialize_us + import_us);
  ASSERT_TRUE(client->Finish().ok());
}

}  // namespace
}  // namespace wbs::engine
