// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Regression guard for the inline-mode submission hot loop: after warm-up,
// Submit/SubmitItems must perform ZERO heap allocations. The scatter
// scratch is a reused member whose single-shard fast path rounds capacity
// to the next power of two (so steadily growing batches do not reallocate
// on every call) and whose multi-shard path retains sub-vector capacity
// across submissions. The test counts every global operator new in the
// binary and pins the hot window at zero; a no-op backend keeps sketch
// internals (which allocate by design) out of the measurement.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "engine/backend.h"
#include "engine/sharded_ingestor.h"
#include "stream/updates.h"

// ---- global allocation counter ---------------------------------------------
// Counts every operator new in this test binary. Only the deltas inside the
// measured windows matter; gtest's own allocations happen outside them.

namespace {
std::atomic<size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(size_t(align),
                                   (size + size_t(align) - 1) &
                                       ~(size_t(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wbs::engine {
namespace {

// Accepts every batch and does nothing — the measured loop ends at the
// backend boundary, so sketch-internal allocations (hash table growth,
// aggregation scratch) cannot pollute the scatter-path assertion.
class NullBackend : public ShardBackend {
 public:
  explicit NullBackend(size_t shards) : shards_(shards) {}

  const std::string& name() const override {
    static const std::string kName = "null";
    return kName;
  }
  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.zero_copy = true;
    return caps;
  }
  size_t num_shards() const override { return shards_; }
  Status ApplyBatch(size_t, const stream::TurnstileUpdate*,
                    size_t count) override {
    applied_ += count;
    return Status::OK();
  }
  Result<uint64_t> Epoch(size_t) const override { return uint64_t{0}; }
  Result<ShardSnapshot> Snapshot(size_t, size_t) const override {
    return Status::Unimplemented("null backend: no snapshots");
  }
  Result<SerializedSnapshot> SnapshotSerialized(size_t, size_t) const override {
    return Status::Unimplemented("null backend: no snapshots");
  }
  Status Flush(size_t) override { return Status::OK(); }
  Result<SketchSummary> LiveSummary(size_t, size_t) const override {
    return Status::Unimplemented("null backend: no summaries");
  }
  uint64_t SpaceBits() const override { return 0; }

  uint64_t applied() const { return applied_; }

 private:
  size_t shards_;
  uint64_t applied_ = 0;
};

std::unique_ptr<ShardedIngestor> MakeInlineEngine(size_t shards) {
  IngestorOptions opts;
  opts.num_shards = shards;
  opts.num_threads = 0;        // inline: apply on the submitting thread
  opts.metrics_enabled = false;  // no instruments, no clock reads
  opts.sketches = {"ams_f2"};  // ignored by NullBackend
  opts.backend = [](const BackendOptions& bopts)
      -> Result<std::unique_ptr<ShardBackend>> {
    return std::unique_ptr<ShardBackend>(
        std::make_unique<NullBackend>(bopts.num_shards));
  };
  auto engine = ShardedIngestor::Create(opts);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return engine.ok() ? std::move(engine).value() : nullptr;
}

stream::TurnstileStream MakeStream(size_t n) {
  stream::TurnstileStream s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back({uint64_t(i) * 0x9e3779b97f4a7c15ULL, 1});
  }
  return s;
}

size_t AllocsDuring(const std::function<void()>& fn) {
  const size_t before = g_allocs.load(std::memory_order_relaxed);
  fn();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(ScatterAllocTest, SingleShardInlineResubmitAllocatesNothing) {
  auto engine = MakeInlineEngine(1);
  ASSERT_NE(engine, nullptr);
  const stream::TurnstileStream s = MakeStream(1000);

  // Warm-up sizes the scratch: capacity is rounded to bit_ceil(1000) = 1024.
  ASSERT_TRUE(engine->SubmitAsync(s.data(), s.size()).ok());

  // Steady state, including batches LARGER than the warm-up (up to the
  // power-of-two capacity): zero allocations.
  for (size_t n : {size_t{1}, size_t{500}, size_t{1000}, size_t{1024}}) {
    const stream::TurnstileStream b = MakeStream(n);
    const size_t allocs = AllocsDuring(
        [&] { ASSERT_TRUE(engine->SubmitAsync(b.data(), b.size()).ok()); });
    EXPECT_EQ(allocs, 0u) << "batch=" << n;
  }
}

TEST(ScatterAllocTest, MultiShardInlineResubmitAllocatesNothing) {
  auto engine = MakeInlineEngine(4);
  ASSERT_NE(engine, nullptr);
  const stream::TurnstileStream s = MakeStream(2048);

  // Two warm-ups: the first sizes the per-shard sub-vectors, the second
  // confirms sizing converged before the measured window.
  ASSERT_TRUE(engine->SubmitAsync(s.data(), s.size()).ok());
  ASSERT_TRUE(engine->SubmitAsync(s.data(), s.size()).ok());

  for (int round = 0; round < 3; ++round) {
    const size_t allocs = AllocsDuring(
        [&] { ASSERT_TRUE(engine->SubmitAsync(s.data(), s.size()).ok()); });
    EXPECT_EQ(allocs, 0u) << "round=" << round;
  }
}

TEST(ScatterAllocTest, ItemPathInlineResubmitAllocatesNothing) {
  auto engine = MakeInlineEngine(4);
  ASSERT_NE(engine, nullptr);
  stream::ItemStream items;
  items.reserve(2048);
  for (size_t i = 0; i < 2048; ++i) {
    items.push_back({uint64_t(i) * 0x9e3779b97f4a7c15ULL});
  }

  ASSERT_TRUE(engine->SubmitItemsAsync(items.data(), items.size()).ok());
  ASSERT_TRUE(engine->SubmitItemsAsync(items.data(), items.size()).ok());

  for (int round = 0; round < 3; ++round) {
    const size_t allocs = AllocsDuring([&] {
      ASSERT_TRUE(engine->SubmitItemsAsync(items.data(), items.size()).ok());
    });
    EXPECT_EQ(allocs, 0u) << "round=" << round;
  }
}

TEST(ScatterAllocTest, GrowingBatchesReallocateLogarithmically) {
  // The bit_ceil rounding claim, observed directly: growing a single-shard
  // batch 1 -> 1024 one update at a time must reallocate the scratch
  // O(log) times, not O(n) times.
  auto engine = MakeInlineEngine(1);
  ASSERT_NE(engine, nullptr);
  const stream::TurnstileStream s = MakeStream(1024);
  size_t growth_allocs = 0;
  for (size_t n = 1; n <= 1024; ++n) {
    growth_allocs +=
        AllocsDuring([&] { ASSERT_TRUE(engine->SubmitAsync(s.data(), n).ok()); });
  }
  // 11 bit_ceil steps; leave headroom for one-off lazy initialization.
  EXPECT_LE(growth_allocs, 32u);
}

}  // namespace
}  // namespace wbs::engine
