// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The model core: StateWriter/StateView semantics and GameRunner contracts
// beyond what integration_test.cc exercises — in particular the defining
// property of "internal state": two algorithm instances with equal
// serialized state behave identically on equal future inputs.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/game.h"
#include "core/state_view.h"
#include "counter/morris.h"
#include "heavyhitters/robust_hh.h"
#include "moments/ams.h"
#include "stream/updates.h"

namespace wbs::core {
namespace {

TEST(StateWriterTest, PutU64AndI64) {
  StateWriter w;
  w.PutU64(42);
  w.PutI64(-1);
  ASSERT_EQ(w.words().size(), 2u);
  EXPECT_EQ(w.words()[0], 42u);
  EXPECT_EQ(int64_t(w.words()[1]), -1);
}

TEST(StateWriterTest, PutDoubleRoundTrips) {
  StateWriter w;
  w.PutDouble(3.25);
  double back;
  uint64_t bits = w.words()[0];
  __builtin_memcpy(&back, &bits, sizeof(back));
  EXPECT_DOUBLE_EQ(back, 3.25);
}

TEST(StateWriterTest, PutBytesLengthPrefixed) {
  StateWriter w;
  const uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  w.PutBytes(data, sizeof(data));
  // length word + ceil(9/8) = 2 payload words.
  ASSERT_EQ(w.words().size(), 3u);
  EXPECT_EQ(w.words()[0], 9u);
}

TEST(StateWriterTest, ClearResets) {
  StateWriter w;
  w.PutU64(1);
  w.Clear();
  EXPECT_TRUE(w.words().empty());
}

TEST(StateWriterTest, DistinctStatesDistinctWords) {
  // Different Misra-Gries contents must serialize differently — otherwise
  // the state-counting arguments of Section 3.3 would be vacuous.
  wbs::RandomTape t1(1), t2(2);
  hh::RobustL1HeavyHitters a(1 << 10, 0.2, 0.25, &t1);
  hh::RobustL1HeavyHitters b(1 << 10, 0.2, 0.25, &t2);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(a.Update({uint64_t(i % 7)}).ok());
    EXPECT_TRUE(b.Update({uint64_t(i % 11)}).ok());
  }
  StateWriter wa, wb;
  a.SerializeState(&wa);
  b.SerializeState(&wb);
  EXPECT_NE(wa.words(), wb.words());
}

TEST(StateSemanticsTest, EqualStateEqualFuture) {
  // Two AMS sketches built identically (same seed, same stream) have equal
  // serialized states AND equal behaviour on any common continuation — the
  // contract StateView relies on.
  for (uint64_t seed : {3ULL, 4ULL}) {
    wbs::RandomTape t1(seed), t2(seed);
    moments::AmsF2Sketch a(1 << 10, 12, &t1);
    moments::AmsF2Sketch b(1 << 10, 12, &t2);
    for (int i = 0; i < 500; ++i) {
      EXPECT_TRUE(a.Update({uint64_t(i % 37), 1}).ok());
      EXPECT_TRUE(b.Update({uint64_t(i % 37), 1}).ok());
    }
    StateWriter wa, wb;
    a.SerializeState(&wa);
    b.SerializeState(&wb);
    ASSERT_EQ(wa.words(), wb.words());
    // Common continuation:
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(a.Update({uint64_t(i), -1}).ok());
      EXPECT_TRUE(b.Update({uint64_t(i), -1}).ok());
      EXPECT_DOUBLE_EQ(a.Query(), b.Query());
    }
  }
}

TEST(GameRunnerTest, MaxRoundsRespected) {
  counter::ExactCounter alg;
  std::vector<stream::BitUpdate> script(1000, stream::BitUpdate{1});
  ScriptedAdversary<stream::BitUpdate, double> adv(script);
  auto r = RunGame<stream::BitUpdate, double>(
      &alg, &adv, 10, [](const stream::BitUpdate&) {},
      [](uint64_t, const double&) { return true; });
  EXPECT_EQ(r.rounds_played, 10u);
}

TEST(GameRunnerTest, EmptyScriptPlaysZeroRounds) {
  counter::ExactCounter alg;
  ScriptedAdversary<stream::BitUpdate, double> adv({});
  auto r = RunGame<stream::BitUpdate, double>(
      &alg, &adv, 10, [](const stream::BitUpdate&) {},
      [](uint64_t, const double&) { return true; });
  EXPECT_TRUE(r.algorithm_survived);
  EXPECT_EQ(r.rounds_played, 0u);
}

TEST(GameRunnerTest, ContinuesPastFailureWhenAsked) {
  // stop_at_first_failure = false: the game records the FIRST failure round
  // but plays on (used by the attack benches to reach the script's end).
  class AlwaysWrong final : public StreamAlg<stream::BitUpdate, double> {
   public:
    Status Update(const stream::BitUpdate&) override { return Status::OK(); }
    double Query() const override { return -1; }
    void SerializeState(StateWriter* w) const override { w->PutU64(0); }
    uint64_t SpaceBits() const override { return 1; }
  };
  AlwaysWrong alg;
  std::vector<stream::BitUpdate> script(20, stream::BitUpdate{1});
  ScriptedAdversary<stream::BitUpdate, double> adv(script);
  auto r = RunGame<stream::BitUpdate, double>(
      &alg, &adv, 100, [](const stream::BitUpdate&) {},
      [](uint64_t, const double&) { return false; },
      /*stop_at_first_failure=*/false);
  EXPECT_FALSE(r.algorithm_survived);
  EXPECT_EQ(r.first_failure_round, 1u);
  EXPECT_EQ(r.rounds_played, 20u);
}

TEST(GameRunnerTest, OnUpdateFiresBeforeAlgorithm) {
  // The referee's ground truth must include the current update when the
  // answer for that round is judged.
  counter::ExactCounter alg;
  std::vector<stream::BitUpdate> script(5, stream::BitUpdate{1});
  ScriptedAdversary<stream::BitUpdate, double> adv(script);
  uint64_t truth = 0;
  auto r = RunGame<stream::BitUpdate, double>(
      &alg, &adv, 10,
      [&](const stream::BitUpdate& u) { truth += u.bit; },
      [&](uint64_t round, const double& answer) {
        EXPECT_EQ(truth, round);  // truth already includes round's update
        return answer == double(truth);
      });
  EXPECT_TRUE(r.algorithm_survived);
}

TEST(GameRunnerTest, MaxSpaceBitsIsPeak) {
  wbs::RandomTape tape(5);
  counter::MorrisCounter alg(0.5, 0.25, &tape);
  std::vector<stream::BitUpdate> script(5000, stream::BitUpdate{1});
  ScriptedAdversary<stream::BitUpdate, double> adv(script);
  auto r = RunGame<stream::BitUpdate, double>(
      &alg, &adv, 5000, [](const stream::BitUpdate&) {},
      [](uint64_t, const double&) { return true; });
  EXPECT_GE(r.max_space_bits, alg.SpaceBits() > 0 ? 1u : 0u);
  EXPECT_GE(r.max_space_bits, alg.SpaceBits());
}

TEST(StateViewTest, DeterministicAlgorithmHasNoLog) {
  counter::ExactCounter alg;  // no tape
  class Probe final : public Adversary<stream::BitUpdate, double> {
   public:
    std::optional<stream::BitUpdate> NextUpdate(const StateView& view,
                                                const double&) override {
      saw_null_log = view.randomness_log == nullptr;
      return std::nullopt;
    }
    bool saw_null_log = false;
  };
  Probe adv;
  RunGame<stream::BitUpdate, double>(
      &alg, &adv, 10, [](const stream::BitUpdate&) {},
      [](uint64_t, const double&) { return true; });
  EXPECT_TRUE(adv.saw_null_log);
}

}  // namespace
}  // namespace wbs::core
