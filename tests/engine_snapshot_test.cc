// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The quiescence-free query path of the sharded engine: epoch-versioned
// shard snapshots, the incremental merge cache (hit / incremental-refold /
// rebuild accounting, invalidation on per-shard writes), equality of
// snapshot answers with post-Flush references on Zipf and churn workloads,
// determinism across thread counts, and queries issued concurrently with
// ingestion — no Flush() anywhere on the query side. All through the typed
// engine::Client surface (handles resolved once, typed results).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/client.h"
#include "engine/registry.h"
#include "engine/sharded_ingestor.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

#include "engine_test_util.h"

namespace wbs::engine {
namespace {

SketchConfig TestConfig(uint64_t universe, uint64_t seed) {
  return SketchConfig{}.WithUniverse(universe).WithSeed(seed);
}

// ----------------------------------------------------------- cache basics --

TEST(MergeCacheTest, SecondQueryOfUnchangedEngineIsACacheHit) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(3);
  auto s = stream::ZipfStream(universe, 20000, 1.2, &tape);
  auto client = MakeClient({"ams_f2", "sis_l0"}, TestConfig(universe, 5), 4, 0);
  ASSERT_TRUE(Replay(client.get(), s).ok());
  ASSERT_TRUE(client->Flush().ok());

  for (const char* name : {"ams_f2", "sis_l0"}) {
    auto handle = client->Handle(name).value();
    auto first = client->QueryScalar(handle);
    auto second = client->QueryScalar(handle);
    ASSERT_TRUE(first.ok() && second.ok()) << name;
    EXPECT_EQ(first.value().value, second.value().value) << name;
    EXPECT_EQ(first.value().updates, second.value().updates) << name;
    const auto metrics = client->Metrics();
    const std::string prefix =
        std::string("engine.sketch.") + name + ".merge_cache.";
    EXPECT_EQ(metrics.Value(prefix + "rebuilds_total"), 1u)
        << name;  // first query folds
    EXPECT_EQ(metrics.Value(prefix + "hits_total"), 1u)
        << name;  // second is served cached
    // Quiescent, fully-reachable engines never flag staleness.
    EXPECT_FALSE(second.value().stale) << name;
  }
}

TEST(MergeCacheTest, PerShardWriteInvalidatesAndRefoldsOnlyDirtyShards) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(7);
  auto s = stream::ZipfStream(universe, 20000, 1.2, &tape);
  auto client = MakeClient({"ams_f2", "sis_l0"}, TestConfig(universe, 9), 8, 0);
  ASSERT_TRUE(Replay(client.get(), s).ok());
  ASSERT_TRUE(client->Flush().ok());
  auto f2 = client->Handle("ams_f2").value();
  ASSERT_TRUE(client->QueryScalar(f2).ok());  // builds the cache

  // One single-item update dirties exactly one shard.
  stream::TurnstileStream one{{42, 3}};
  ASSERT_TRUE(Replay(client.get(), one).ok());
  ASSERT_TRUE(client->Flush().ok());

  auto after = client->QueryScalar(f2);
  ASSERT_TRUE(after.ok());
  const auto metrics = client->Metrics();
  EXPECT_EQ(metrics.Value("engine.sketch.ams_f2.merge_cache.rebuilds_total"),
            1u);
  // linear: unmerge + merge 1 shard
  EXPECT_EQ(
      metrics.Value("engine.sketch.ams_f2.merge_cache.incremental_total"),
      1u);

  // The refolded answer equals a from-scratch reference run.
  auto reference =
      MakeClient({"ams_f2", "sis_l0"}, TestConfig(universe, 9), 8, 0);
  ASSERT_TRUE(Replay(reference.get(), s).ok());
  ASSERT_TRUE(Replay(reference.get(), one).ok());
  ASSERT_TRUE(reference->Finish().ok());
  auto want = reference->QueryScalar(reference->Handle("ams_f2").value());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(after.value().value, want.value().value);
  EXPECT_EQ(after.value().updates, want.value().updates);
}

TEST(MergeCacheTest, NonInvertibleSketchFallsBackToRebuild) {
  // misra_gries merges are lossy, so its cache path must rebuild (never
  // incrementally refold) and still be correct.
  const uint64_t universe = 256;
  wbs::RandomTape tape(11);
  auto s = stream::ZipfStream(universe, 10000, 1.1, &tape);
  SketchConfig cfg = TestConfig(universe, 13);
  cfg.misra_gries.counters = 512;  // no eviction: merged answer is exact
  auto client = MakeClient({"misra_gries"}, cfg, 8, 0);
  ASSERT_TRUE(Replay(client.get(), s).ok());
  ASSERT_TRUE(client->Flush().ok());
  auto mg = client->Handle("misra_gries").value();
  ASSERT_TRUE(client->QueryTopK(mg, 1).ok());

  stream::TurnstileStream one{{17, 5}};
  ASSERT_TRUE(Replay(client.get(), one).ok());
  ASSERT_TRUE(client->Flush().ok());

  const auto metrics_before = client->Metrics();
  ASSERT_NE(metrics_before.Find(
                "engine.sketch.misra_gries.merge_cache.rebuilds_total"),
            nullptr);

  stream::FrequencyOracle truth(universe);
  truth.AddStream(s);
  truth.Add(17, 5);
  for (const auto& [item, f] : truth.frequencies()) {
    auto point = client->QueryPoint(mg, item);
    ASSERT_TRUE(point.ok()) << item;
    EXPECT_DOUBLE_EQ(point.value().estimate, double(f)) << item;
  }

  const auto metrics = client->Metrics();
  EXPECT_EQ(
      metrics.Value("engine.sketch.misra_gries.merge_cache.incremental_total"),
      0u);
  EXPECT_EQ(
      metrics.Value("engine.sketch.misra_gries.merge_cache.rebuilds_total"),
      2u);
}

// ------------------------------------------- snapshot vs flushed reference --

TEST(SnapshotQueryTest, MatchesPostFlushReferenceOnZipfAndChurn) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(21);
  auto items = stream::ZipfStream(universe, 30000, 1.1, &tape);
  stream::TurnstileStream zipf;
  zipf.reserve(items.size());
  for (const auto& u : items) zipf.push_back({u.item, 1});
  auto churn = stream::InsertDeleteChurnStream(universe, 150, 2500, &tape);

  for (const stream::TurnstileStream* s : {&zipf, &churn}) {
    SketchConfig cfg = TestConfig(universe, 77);
    auto snap = MakeClient({"ams_f2", "sis_l0"}, cfg, 4, 2);
    auto ref = MakeClient({"ams_f2", "sis_l0"}, cfg, 1, 0);
    ASSERT_TRUE(Replay(snap.get(), *s).ok());
    ASSERT_TRUE(Replay(ref.get(), *s).ok());
    ASSERT_TRUE(snap->Flush().ok());  // quiescence makes snapshots exact
    ASSERT_TRUE(ref->Finish().ok());
    for (const char* name : {"ams_f2", "sis_l0"}) {
      auto got = snap->QueryScalar(snap->Handle(name).value());
      auto want = ref->QueryScalar(ref->Handle(name).value());
      ASSERT_TRUE(got.ok() && want.ok()) << name;
      EXPECT_EQ(got.value().value, want.value().value) << name;
      EXPECT_EQ(got.value().updates, want.value().updates) << name;
    }
    ASSERT_TRUE(snap->Finish().ok());
  }
}

TEST(SnapshotQueryTest, MidStreamSnapshotEqualsPrefixReference) {
  // Query after some submissions but before others (inline mode, snapshot
  // throttle forced to every batch): the answer must equal a reference run
  // over exactly the submitted prefix — the "consistent as-of-epoch
  // frontier" guarantee in its deterministic, single-threaded form.
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(31);
  auto items = stream::ZipfStream(universe, 20000, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  const size_t half = s.size() / 2;

  ClientOptions opts;
  opts.ingest.num_shards = 4;
  opts.ingest.num_threads = 0;
  opts.ingest.snapshot_min_updates = 0;  // publish every batch boundary
  opts.ingest.sketches = {"ams_f2", "sis_l0"};
  opts.ingest.config = TestConfig(universe, 55);
  auto client = Client::Create(opts);
  ASSERT_TRUE(client.ok());
  stream::TurnstileStream prefix(s.begin(), s.begin() + half);
  stream::TurnstileStream suffix(s.begin() + half, s.end());
  ASSERT_TRUE(Replay(client.value().get(), prefix, 512).ok());

  auto ref = MakeClient({"ams_f2", "sis_l0"}, TestConfig(universe, 55), 1, 0);
  ASSERT_TRUE(Replay(ref.get(), prefix, 512).ok());
  ASSERT_TRUE(ref->Finish().ok());
  for (const char* name : {"ams_f2", "sis_l0"}) {
    // No Flush before this query.
    auto got = client.value()->QueryScalar(client.value()->Handle(name).value());
    auto want = ref->QueryScalar(ref->Handle(name).value());
    ASSERT_TRUE(got.ok() && want.ok()) << name;
    EXPECT_EQ(got.value().value, want.value().value) << name;
    EXPECT_EQ(got.value().updates, want.value().updates) << name;
  }

  // The engine keeps ingesting after the mid-stream query.
  ASSERT_TRUE(Replay(client.value().get(), suffix, 512).ok());
  ASSERT_TRUE(client.value()->Finish().ok());
  auto full = client.value()->QueryScalar(client.value()->Handle("ams_f2").value());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().updates, uint64_t(s.size()));
}

// ------------------------------------------------------------- determinism --

TEST(SnapshotQueryTest, SummariesDeterministicAcrossThreadCounts) {
  const uint64_t universe = 1 << 14;
  wbs::RandomTape tape(41);
  auto zipf = stream::ZipfStream(universe, 25000, 1.1, &tape);
  auto churn = stream::InsertDeleteChurnStream(universe, 200, 2000, &tape);

  // Turnstile-capable set so the churn stream can ride along (misra_gries
  // would reject its deletions; its determinism is covered in engine_test).
  auto run = [&](size_t threads) {
    auto client = MakeClient({"ams_f2", "sis_l0"}, TestConfig(universe, 2026),
                             4, threads);
    EXPECT_TRUE(Replay(client.get(), zipf, 512).ok());
    EXPECT_TRUE(Replay(client.get(), churn, 512).ok());
    EXPECT_TRUE(client->Finish().ok());
    std::vector<SketchSummary> out;
    for (const char* name : {"ams_f2", "sis_l0"}) {
      auto summary = client->RawSummary(client->Handle(name).value());
      EXPECT_TRUE(summary.ok()) << name;
      out.push_back(std::move(summary).value());
    }
    return out;
  };

  auto reference = run(0);
  for (size_t threads : {1u, 2u, 4u}) {
    auto got = run(threads);
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].scalar, reference[i].scalar)
          << got[i].sketch << " with " << threads << " threads";
      EXPECT_EQ(got[i].updates, reference[i].updates)
          << got[i].sketch << " with " << threads << " threads";
      ASSERT_EQ(got[i].items.size(), reference[i].items.size());
      for (size_t j = 0; j < got[i].items.size(); ++j) {
        EXPECT_EQ(got[i].items[j].item, reference[i].items[j].item);
        EXPECT_EQ(got[i].items[j].estimate, reference[i].items[j].estimate);
      }
    }
  }
}

// --------------------------------------------------------- concurrent query --

TEST(SnapshotQueryTest, QueriesSucceedWhileWorkersIngest) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(51);
  auto s = stream::ZipfStream(universe, 200000, 1.2, &tape);

  ClientOptions opts;
  opts.ingest.num_shards = 8;
  opts.ingest.num_threads = 4;
  opts.ingest.snapshot_min_updates = 256;
  opts.ingest.sketches = {"ams_f2", "sis_l0"};
  opts.ingest.config = TestConfig(universe, 99);
  auto client = Client::Create(opts);
  ASSERT_TRUE(client.ok());
  auto f2 = client.value()->Handle("ams_f2").value();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_queries{0};
  std::atomic<uint64_t> failed_queries{0};
  uint64_t last_updates = 0;
  bool monotone = true;
  std::thread querier([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = client.value()->QueryScalar(f2);
      if (!r.ok()) {
        ++failed_queries;
        continue;
      }
      ++ok_queries;
      // Published epochs only advance, so the summarized update count must
      // be non-decreasing across successive snapshot queries.
      if (r.value().updates < last_updates) monotone = false;
      last_updates = r.value().updates;
    }
  });

  // Submission is asynchronous now: Replay returns as soon as the batches
  // are ticketed, so keep the querier running through Flush() — that is
  // the window in which workers are actually ingesting.
  ASSERT_TRUE(Replay(client.value().get(), s, 2048).ok());
  ASSERT_TRUE(client.value()->Flush().ok());
  stop.store(true, std::memory_order_relaxed);
  querier.join();
  ASSERT_TRUE(client.value()->Finish().ok());

  EXPECT_EQ(failed_queries.load(), 0u);
  EXPECT_GT(ok_queries.load(), 0u);
  EXPECT_TRUE(monotone);

  // Final answer (post-Finish) matches a quiescent reference.
  auto ref = MakeClient({"ams_f2", "sis_l0"}, TestConfig(universe, 99), 1, 0);
  ASSERT_TRUE(Replay(ref.get(), s).ok());
  ASSERT_TRUE(ref->Finish().ok());
  auto got = client.value()->QueryScalar(f2);
  auto want = ref->QueryScalar(ref->Handle("ams_f2").value());
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got.value().value, want.value().value);
  EXPECT_EQ(got.value().updates, uint64_t(s.size()));
}

// ------------------------------------------------------------------ epochs --

TEST(SnapshotQueryTest, FlushPublishesLaggingShards) {
  const uint64_t universe = 1 << 10;
  auto client = MakeClient({"ams_f2"}, TestConfig(universe, 3), 4, 0);
  wbs::RandomTape tape(3);
  auto s = stream::UniformStream(universe, 100, &tape);
  // Churn-mode opt-out: this test pins the "nothing published yet" state
  // of the snapshot throttle, and an injected handoff publishes.
  ASSERT_TRUE(Replay(client.get(), s, /*batch=*/8, ReplayChurn::kDisabled)
                  .ok());
  auto f2 = client->Handle("ams_f2").value();
  // 100 updates < snapshot_min_updates (1024): nothing published yet, so a
  // snapshot query sees the empty frontier...
  auto before = client->QueryScalar(f2);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().updates, 0u);
  uint64_t epochs_before = 0;
  for (size_t sh = 0; sh < 4; ++sh) {
    epochs_before += client->ingestor().ShardEpoch(sh);
  }
  EXPECT_EQ(epochs_before, 0u);
  // ...and Flush() catches every lagging shard up.
  ASSERT_TRUE(client->Flush().ok());
  auto after = client->QueryScalar(f2);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().updates, 100u);
}

TEST(SnapshotQueryTest, QueryReportsIngestionErrors) {
  // Once ingestion has errored, the quiescence-free query path must return
  // the error too — workers stop mutating state, so continuing to serve OK
  // answers would silently freeze the pipeline for its clients.
  auto client = MakeClient({"ams_f2"}, TestConfig(/*universe=*/16, 1), 2, 0);
  auto f2 = client->Handle("ams_f2").value();
  ASSERT_TRUE(client->QueryScalar(f2).ok());
  stream::TurnstileStream bad{{uint64_t{1} << 20, 1}};
  EXPECT_FALSE(client->Submit(bad).ok());  // inline mode: fails synchronously
  EXPECT_FALSE(client->QueryScalar(f2).ok());
  EXPECT_FALSE(client->RawSummary(f2).ok());
}

}  // namespace
}  // namespace wbs::engine
