// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The quiescence-free query path of the sharded engine: epoch-versioned
// shard snapshots, the incremental merge cache (hit / incremental-refold /
// rebuild accounting, invalidation on per-shard writes), equality of
// snapshot answers with post-Flush references on Zipf and churn workloads,
// determinism across thread counts, and queries issued concurrently with
// ingestion — no Flush() anywhere on the query side.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/driver.h"
#include "engine/registry.h"
#include "engine/sharded_ingestor.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

namespace wbs::engine {
namespace {

SketchConfig TestConfig(uint64_t universe, uint64_t seed) {
  SketchConfig cfg;
  cfg.universe = universe;
  cfg.seed = seed;
  return cfg;
}

std::unique_ptr<Driver> MakeDriver(std::vector<std::string> sketches,
                                   const SketchConfig& cfg, size_t shards,
                                   size_t threads, size_t batch = 1024) {
  DriverOptions opts;
  opts.ingest.num_shards = shards;
  opts.ingest.num_threads = threads;
  opts.ingest.sketches = std::move(sketches);
  opts.ingest.config = cfg;
  opts.batch_size = batch;
  auto driver = Driver::Create(opts);
  EXPECT_TRUE(driver.ok()) << driver.status().ToString();
  return std::move(driver).value();
}

// ----------------------------------------------------------- cache basics --

TEST(MergeCacheTest, SecondQueryOfUnchangedEngineIsACacheHit) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(3);
  auto s = stream::ZipfStream(universe, 20000, 1.2, &tape);
  auto driver = MakeDriver({"ams_f2", "sis_l0"}, TestConfig(universe, 5), 4, 0);
  ASSERT_TRUE(driver->Replay(s).ok());
  ASSERT_TRUE(driver->Flush().ok());

  for (const char* name : {"ams_f2", "sis_l0"}) {
    auto first = driver->Query(name);
    auto second = driver->Query(name);
    ASSERT_TRUE(first.ok() && second.ok()) << name;
    EXPECT_EQ(first.value().scalar, second.value().scalar) << name;
    EXPECT_EQ(first.value().updates, second.value().updates) << name;
    auto stats = driver->ingestor().CacheStats(name);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().rebuilds, 1u) << name;  // first query folds
    EXPECT_EQ(stats.value().hits, 1u) << name;      // second is served cached
  }
}

TEST(MergeCacheTest, PerShardWriteInvalidatesAndRefoldsOnlyDirtyShards) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(7);
  auto s = stream::ZipfStream(universe, 20000, 1.2, &tape);
  auto driver = MakeDriver({"ams_f2", "sis_l0"}, TestConfig(universe, 9), 8, 0);
  ASSERT_TRUE(driver->Replay(s).ok());
  ASSERT_TRUE(driver->Flush().ok());
  ASSERT_TRUE(driver->Query("ams_f2").ok());  // builds the cache

  // One single-item update dirties exactly one shard.
  stream::TurnstileStream one{{42, 3}};
  ASSERT_TRUE(driver->Replay(one).ok());
  ASSERT_TRUE(driver->Flush().ok());

  auto after = driver->Query("ams_f2");
  ASSERT_TRUE(after.ok());
  auto stats = driver->ingestor().CacheStats("ams_f2");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().rebuilds, 1u);
  EXPECT_EQ(stats.value().incremental, 1u);  // linear: unmerge + merge 1 shard

  // The refolded answer equals a from-scratch reference run.
  auto reference =
      MakeDriver({"ams_f2", "sis_l0"}, TestConfig(universe, 9), 8, 0);
  ASSERT_TRUE(reference->Replay(s).ok());
  ASSERT_TRUE(reference->Replay(one).ok());
  ASSERT_TRUE(reference->Finish().ok());
  auto want = reference->Query("ams_f2");
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(after.value().scalar, want.value().scalar);
  EXPECT_EQ(after.value().updates, want.value().updates);
}

TEST(MergeCacheTest, NonInvertibleSketchFallsBackToRebuild) {
  // misra_gries merges are lossy, so its cache path must rebuild (never
  // incrementally refold) and still be correct.
  const uint64_t universe = 256;
  wbs::RandomTape tape(11);
  auto s = stream::ZipfStream(universe, 10000, 1.1, &tape);
  SketchConfig cfg = TestConfig(universe, 13);
  cfg.mg_counters = 512;  // no eviction: merged answer is exact
  auto driver = MakeDriver({"misra_gries"}, cfg, 8, 0);
  ASSERT_TRUE(driver->Replay(s).ok());
  ASSERT_TRUE(driver->Flush().ok());
  ASSERT_TRUE(driver->Query("misra_gries").ok());

  stream::TurnstileStream one{{17, 5}};
  ASSERT_TRUE(driver->Replay(one).ok());
  ASSERT_TRUE(driver->Flush().ok());
  auto after = driver->Query("misra_gries");
  ASSERT_TRUE(after.ok());

  auto stats = driver->ingestor().CacheStats("misra_gries");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().incremental, 0u);
  EXPECT_EQ(stats.value().rebuilds, 2u);

  stream::FrequencyOracle truth(universe);
  truth.AddStream(s);
  truth.Add(17, 5);
  for (const auto& [item, f] : truth.frequencies()) {
    EXPECT_DOUBLE_EQ(after.value().Estimate(item), double(f)) << item;
  }
}

// ------------------------------------------- snapshot vs flushed reference --

TEST(SnapshotQueryTest, MatchesPostFlushReferenceOnZipfAndChurn) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(21);
  auto items = stream::ZipfStream(universe, 30000, 1.1, &tape);
  stream::TurnstileStream zipf;
  zipf.reserve(items.size());
  for (const auto& u : items) zipf.push_back({u.item, 1});
  auto churn = stream::InsertDeleteChurnStream(universe, 150, 2500, &tape);

  for (const stream::TurnstileStream* s : {&zipf, &churn}) {
    SketchConfig cfg = TestConfig(universe, 77);
    auto snap = MakeDriver({"ams_f2", "sis_l0"}, cfg, 4, 2);
    auto ref = MakeDriver({"ams_f2", "sis_l0"}, cfg, 1, 0);
    ASSERT_TRUE(snap->Replay(*s).ok());
    ASSERT_TRUE(ref->Replay(*s).ok());
    ASSERT_TRUE(snap->Flush().ok());  // quiescence makes snapshots exact
    ASSERT_TRUE(ref->Finish().ok());
    for (const char* name : {"ams_f2", "sis_l0"}) {
      auto got = snap->Query(name);       // snapshot/cache path, post-Flush
      auto want = ref->Summary(name);     // single-shard reference
      ASSERT_TRUE(got.ok() && want.ok()) << name;
      EXPECT_EQ(got.value().scalar, want.value().scalar) << name;
      EXPECT_EQ(got.value().updates, want.value().updates) << name;
    }
    ASSERT_TRUE(snap->Finish().ok());
  }
}

TEST(SnapshotQueryTest, MidStreamSnapshotEqualsPrefixReference) {
  // Query after some submissions but before others (inline mode, snapshot
  // throttle forced to every batch): the answer must equal a reference run
  // over exactly the submitted prefix — the "consistent as-of-epoch
  // frontier" guarantee in its deterministic, single-threaded form.
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(31);
  auto items = stream::ZipfStream(universe, 20000, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  const size_t half = s.size() / 2;

  DriverOptions opts;
  opts.ingest.num_shards = 4;
  opts.ingest.num_threads = 0;
  opts.ingest.snapshot_min_updates = 0;  // publish every batch boundary
  opts.ingest.sketches = {"ams_f2", "sis_l0"};
  opts.ingest.config = TestConfig(universe, 55);
  opts.batch_size = 512;
  auto driver = Driver::Create(opts);
  ASSERT_TRUE(driver.ok());
  stream::TurnstileStream prefix(s.begin(), s.begin() + half);
  stream::TurnstileStream suffix(s.begin() + half, s.end());
  ASSERT_TRUE(driver.value()->Replay(prefix).ok());

  auto ref = MakeDriver({"ams_f2", "sis_l0"}, TestConfig(universe, 55), 1, 0);
  ASSERT_TRUE(ref->Replay(prefix).ok());
  ASSERT_TRUE(ref->Finish().ok());
  for (const char* name : {"ams_f2", "sis_l0"}) {
    auto got = driver.value()->Query(name);  // no Flush before this query
    auto want = ref->Summary(name);
    ASSERT_TRUE(got.ok() && want.ok()) << name;
    EXPECT_EQ(got.value().scalar, want.value().scalar) << name;
    EXPECT_EQ(got.value().updates, want.value().updates) << name;
  }

  // The engine keeps ingesting after the mid-stream query.
  ASSERT_TRUE(driver.value()->Replay(suffix).ok());
  ASSERT_TRUE(driver.value()->Finish().ok());
  auto full = driver.value()->Query("ams_f2");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().updates, uint64_t(s.size()));
}

// ------------------------------------------------------------- determinism --

TEST(SnapshotQueryTest, SummariesDeterministicAcrossThreadCounts) {
  const uint64_t universe = 1 << 14;
  wbs::RandomTape tape(41);
  auto zipf = stream::ZipfStream(universe, 25000, 1.1, &tape);
  auto churn = stream::InsertDeleteChurnStream(universe, 200, 2000, &tape);

  // Turnstile-capable set so the churn stream can ride along (misra_gries
  // would reject its deletions; its determinism is covered in engine_test).
  auto run = [&](size_t threads) {
    auto driver = MakeDriver({"ams_f2", "sis_l0"}, TestConfig(universe, 2026),
                             4, threads, 512);
    EXPECT_TRUE(driver->Replay(zipf).ok());
    EXPECT_TRUE(driver->Replay(churn).ok());
    EXPECT_TRUE(driver->Finish().ok());
    std::vector<SketchSummary> out;
    for (const char* name : {"ams_f2", "sis_l0"}) {
      auto summary = driver->Query(name);
      EXPECT_TRUE(summary.ok()) << name;
      out.push_back(std::move(summary).value());
    }
    return out;
  };

  auto reference = run(0);
  for (size_t threads : {1u, 2u, 4u}) {
    auto got = run(threads);
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].scalar, reference[i].scalar)
          << got[i].sketch << " with " << threads << " threads";
      EXPECT_EQ(got[i].updates, reference[i].updates)
          << got[i].sketch << " with " << threads << " threads";
      ASSERT_EQ(got[i].items.size(), reference[i].items.size());
      for (size_t j = 0; j < got[i].items.size(); ++j) {
        EXPECT_EQ(got[i].items[j].item, reference[i].items[j].item);
        EXPECT_EQ(got[i].items[j].estimate, reference[i].items[j].estimate);
      }
    }
  }
}

// --------------------------------------------------------- concurrent query --

TEST(SnapshotQueryTest, QueriesSucceedWhileWorkersIngest) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(51);
  auto s = stream::ZipfStream(universe, 200000, 1.2, &tape);

  DriverOptions opts;
  opts.ingest.num_shards = 8;
  opts.ingest.num_threads = 4;
  opts.ingest.snapshot_min_updates = 256;
  opts.ingest.sketches = {"ams_f2", "sis_l0"};
  opts.ingest.config = TestConfig(universe, 99);
  opts.batch_size = 2048;
  auto driver = Driver::Create(opts);
  ASSERT_TRUE(driver.ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_queries{0};
  std::atomic<uint64_t> failed_queries{0};
  uint64_t last_updates = 0;
  bool monotone = true;
  std::thread querier([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = driver.value()->Query("ams_f2");
      if (!r.ok()) {
        ++failed_queries;
        continue;
      }
      ++ok_queries;
      // Published epochs only advance, so the summarized update count must
      // be non-decreasing across successive snapshot queries.
      if (r.value().updates < last_updates) monotone = false;
      last_updates = r.value().updates;
    }
  });

  ASSERT_TRUE(driver.value()->Replay(s).ok());
  stop.store(true, std::memory_order_relaxed);
  querier.join();
  ASSERT_TRUE(driver.value()->Finish().ok());

  EXPECT_EQ(failed_queries.load(), 0u);
  EXPECT_GT(ok_queries.load(), 0u);
  EXPECT_TRUE(monotone);

  // Final answer (post-Finish) matches a quiescent reference.
  auto ref = MakeDriver({"ams_f2", "sis_l0"}, TestConfig(universe, 99), 1, 0);
  ASSERT_TRUE(ref->Replay(s).ok());
  ASSERT_TRUE(ref->Finish().ok());
  auto got = driver.value()->Query("ams_f2");
  auto want = ref->Summary("ams_f2");
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got.value().scalar, want.value().scalar);
  EXPECT_EQ(got.value().updates, uint64_t(s.size()));
}

// ------------------------------------------------------------------ epochs --

TEST(SnapshotQueryTest, FlushPublishesLaggingShards) {
  const uint64_t universe = 1 << 10;
  auto driver = MakeDriver({"ams_f2"}, TestConfig(universe, 3), 4, 0,
                           /*batch=*/8);  // far below snapshot_min_updates
  wbs::RandomTape tape(3);
  auto s = stream::UniformStream(universe, 100, &tape);
  ASSERT_TRUE(driver->Replay(s).ok());
  // 100 updates < snapshot_min_updates (1024): nothing published yet, so a
  // snapshot query sees the empty frontier...
  auto before = driver->Query("ams_f2");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().updates, 0u);
  uint64_t epochs_before = 0;
  for (size_t sh = 0; sh < 4; ++sh) {
    epochs_before += driver->ingestor().ShardEpoch(sh);
  }
  EXPECT_EQ(epochs_before, 0u);
  // ...and Flush() catches every lagging shard up.
  ASSERT_TRUE(driver->Flush().ok());
  auto after = driver->Query("ams_f2");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().updates, 100u);
}

TEST(SnapshotQueryTest, QueryReportsIngestionErrors) {
  // Once ingestion has errored, the quiescence-free query path must return
  // the error too — workers stop mutating state, so continuing to serve OK
  // answers would silently freeze the pipeline for its clients.
  IngestorOptions opts;
  opts.num_shards = 2;
  opts.num_threads = 0;
  opts.sketches = {"ams_f2"};
  opts.config = TestConfig(/*universe=*/16, 1);
  auto ingestor = ShardedIngestor::Create(opts);
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE(ingestor.value()->MergedSummary("ams_f2").ok());
  stream::TurnstileUpdate bad{1 << 20, 1};  // out of universe
  EXPECT_FALSE(ingestor.value()->Submit(&bad, 1).ok());
  EXPECT_FALSE(ingestor.value()->MergedSummary("ams_f2").ok());
}

}  // namespace
}  // namespace wbs::engine
