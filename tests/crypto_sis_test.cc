// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// SIS toolkit: oracle-derived matrices, sketch linearity, and the bounded
// adversary's short-vector searches (Definition 2.15, Assumption 2.17).

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/modmath.h"
#include "common/random.h"
#include "crypto/random_oracle.h"
#include "crypto/sis.h"

namespace wbs::crypto {
namespace {

SisParams SmallParams() {
  SisParams p;
  p.q = 10007;
  p.rows = 3;
  p.cols = 4;
  p.beta_inf = 2;
  return p;
}

TEST(SisMatrixTest, EntriesConsistentAndInRange) {
  RandomOracle ro(1);
  SisMatrix m(SmallParams(), ro, 7);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      uint64_t e = m.Entry(i, j);
      EXPECT_LT(e, 10007u);
      EXPECT_EQ(e, m.Entry(i, j));
    }
  }
}

TEST(SisMatrixTest, MaterializePreservesEntries) {
  RandomOracle ro(2);
  SisMatrix a(SmallParams(), ro, 9);
  SisMatrix b(SmallParams(), ro, 9);
  b.Materialize();
  EXPECT_TRUE(b.materialized());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(a.Entry(i, j), b.Entry(i, j));
    }
  }
}

TEST(SisMatrixTest, DomainsAreIndependent) {
  RandomOracle ro(3);
  SisMatrix a(SmallParams(), ro, 1);
  SisMatrix b(SmallParams(), ro, 2);
  int diffs = 0;
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      diffs += a.Entry(i, j) != b.Entry(i, j) ? 1 : 0;
    }
  }
  EXPECT_GT(diffs, 8);
}

TEST(SisParamsTest, BitsAccounting) {
  SisParams p = SmallParams();
  EXPECT_EQ(p.EntryBits(), wbs::BitsForUniverse(10007));
  EXPECT_EQ(p.MatrixBits(), p.EntryBits() * 12);
}

TEST(SisSketchTest, StartsZero) {
  RandomOracle ro(4);
  SisMatrix m(SmallParams(), ro, 0);
  SisSketchVector v(&m);
  EXPECT_TRUE(v.IsZero());
}

TEST(SisSketchTest, UpdateThenCancelReturnsToZero) {
  RandomOracle ro(5);
  SisMatrix m(SmallParams(), ro, 0);
  SisSketchVector v(&m);
  ASSERT_TRUE(v.Update(2, 5).ok());
  EXPECT_FALSE(v.IsZero());
  ASSERT_TRUE(v.Update(2, -5).ok());
  EXPECT_TRUE(v.IsZero());
}

TEST(SisSketchTest, Linearity) {
  RandomOracle ro(6);
  SisMatrix m(SmallParams(), ro, 0);
  SisSketchVector a(&m), b(&m), ab(&m);
  ASSERT_TRUE(a.Update(0, 3).ok());
  ASSERT_TRUE(b.Update(1, -2).ok());
  ASSERT_TRUE(ab.Update(0, 3).ok());
  ASSERT_TRUE(ab.Update(1, -2).ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ab.value()[i],
              AddMod(a.value()[i], b.value()[i], m.params().q));
  }
}

TEST(SisSketchTest, OutOfRangeColumnRejected) {
  RandomOracle ro(7);
  SisMatrix m(SmallParams(), ro, 0);
  SisSketchVector v(&m);
  EXPECT_FALSE(v.Update(4, 1).ok());
}

TEST(SisSketchTest, NegativeDeltaReducesCorrectly) {
  RandomOracle ro(8);
  SisMatrix m(SmallParams(), ro, 0);
  SisSketchVector v(&m);
  ASSERT_TRUE(v.Update(1, -1).ok());
  const uint64_t q = m.params().q;
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(v.value()[i], (q - m.Entry(i, 1) % q) % q);
  }
}

TEST(SisSketchTest, SpaceBits) {
  RandomOracle ro(9);
  SisMatrix m(SmallParams(), ro, 0);
  SisSketchVector v(&m);
  EXPECT_EQ(v.SpaceBits(), 3 * wbs::BitsForUniverse(10007));
}

TEST(SisSolutionTest, ValidatorAcceptsPlanted) {
  // Tiny q makes kernel vectors common: find one by brute force and check
  // the validator agrees with a manual recomputation.
  SisParams p;
  p.q = 3;
  p.rows = 2;
  p.cols = 6;
  p.beta_inf = 1;
  RandomOracle ro(10);
  SisMatrix m(p, ro, 0);
  SisAttackResult r = BruteForceSisAttack(m, 1'000'000);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(IsValidSisSolution(m, r.z));
}

TEST(SisSolutionTest, ValidatorRejectsZeroAndOversized) {
  SisParams p = SmallParams();
  RandomOracle ro(11);
  SisMatrix m(p, ro, 0);
  EXPECT_FALSE(IsValidSisSolution(m, std::vector<int64_t>(4, 0)));
  std::vector<int64_t> too_big(4, 0);
  too_big[0] = int64_t(p.beta_inf) + 1;
  EXPECT_FALSE(IsValidSisSolution(m, too_big));
  EXPECT_FALSE(IsValidSisSolution(m, std::vector<int64_t>(3, 1)));  // size
}

TEST(SisAttackTest, BruteForceRespectsBudget) {
  SisParams p;
  p.q = (uint64_t{1} << 31) - 1;  // large q: no short solution in range
  p.rows = 4;
  p.cols = 6;
  p.beta_inf = 1;
  RandomOracle ro(12);
  SisMatrix m(p, ro, 0);
  SisAttackResult r = BruteForceSisAttack(m, 100);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_LE(r.operations_used, 101u);
}

TEST(SisAttackTest, BruteForceExhaustsWithoutSolution) {
  // With a huge modulus and one row, A z = 0 mod q over {-1,0,1}^3 has no
  // nonzero solution w.h.p. — the attack must report exhaustion of the
  // SEARCH SPACE (not the budget).
  SisParams p;
  p.q = (uint64_t{1} << 61) - 1;
  p.rows = 2;
  p.cols = 3;
  p.beta_inf = 1;
  RandomOracle ro(13);
  SisMatrix m(p, ro, 0);
  SisAttackResult r = BruteForceSisAttack(m, 1'000'000);
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(SisAttackTest, MeetInMiddleAgreesWithBruteForceOnSolvability) {
  SisParams p;
  p.q = 5;
  p.rows = 2;
  p.cols = 6;
  p.beta_inf = 1;
  RandomOracle ro(14);
  SisMatrix m(p, ro, 0);
  SisAttackResult bf = BruteForceSisAttack(m, 10'000'000);
  SisAttackResult mitm = MeetInMiddleSisAttack(m, 10'000'000);
  EXPECT_EQ(bf.found, mitm.found);
  if (mitm.found) {
    EXPECT_TRUE(IsValidSisSolution(m, mitm.z));
  }
}

TEST(SisAttackTest, MeetInMiddleExploresQuadraticallyFewerCandidates) {
  // On an UNSOLVABLE instance both searches exhaust: brute force visits
  // (2b+1)^cols candidates, meet-in-the-middle only 2 * (2b+1)^{cols/2}.
  SisParams p;
  p.q = (uint64_t{1} << 61) - 1;  // huge q: no short solution
  p.rows = 2;
  p.cols = 10;
  p.beta_inf = 1;
  RandomOracle ro(15);
  SisMatrix m(p, ro, 0);
  SisAttackResult bf = BruteForceSisAttack(m, 100'000'000);
  SisAttackResult mitm = MeetInMiddleSisAttack(m, 100'000'000);
  ASSERT_FALSE(bf.found);
  ASSERT_FALSE(mitm.found);
  EXPECT_GE(bf.operations_used, 50000u);   // 3^10 = 59049
  EXPECT_LE(mitm.operations_used, 600u);   // 2 * 3^5 = 486
}

TEST(SisAttackTest, WorkGrowsExponentiallyWithColumns) {
  // The experimental core of the computational separation: each extra
  // column multiplies the exhaustive search space by (2 beta + 1).
  uint64_t prev_ops = 0;
  for (size_t cols = 4; cols <= 8; cols += 2) {
    SisParams p;
    p.q = (uint64_t{1} << 61) - 1;
    p.rows = 3;
    p.cols = cols;
    p.beta_inf = 1;
    RandomOracle ro(16);
    SisMatrix m(p, ro, 0);
    SisAttackResult r = BruteForceSisAttack(m, ~uint64_t{0} >> 1);
    EXPECT_FALSE(r.found);
    if (prev_ops > 0) {
      EXPECT_GE(r.operations_used, prev_ops * 4);
    }
    prev_ops = r.operations_used;
  }
}

// ------------------------------------------------- materialization kernels --

TEST(SisMatrixTest, MaterializeServesIdenticalEntries) {
  // The column-major cache must be invisible through Entry(): every entry
  // equals its on-demand oracle value, and Column(j) is the contiguous
  // image of column j.
  RandomOracle oracle(31);
  SisParams p;
  p.q = wbs::NextPrime(uint64_t{1} << 61);
  p.rows = 7;
  p.cols = 13;
  p.beta_inf = 5;
  SisMatrix lazy(p, oracle, 4);
  SisMatrix cached(p, oracle, 4);
  cached.Materialize();
  ASSERT_TRUE(cached.materialized());
  ASSERT_FALSE(lazy.materialized());
  for (size_t i = 0; i < p.rows; ++i) {
    for (size_t j = 0; j < p.cols; ++j) {
      EXPECT_EQ(cached.Entry(i, j), lazy.Entry(i, j)) << i << "," << j;
    }
  }
  for (size_t j = 0; j < p.cols; ++j) {
    const uint64_t* column = cached.Column(j);
    for (size_t i = 0; i < p.rows; ++i) {
      EXPECT_EQ(column[i], lazy.Entry(i, j));
    }
  }
}

TEST(SisSketchVectorTest, MaterializedUpdatePathBitIdenticalToOraclePath) {
  RandomOracle oracle(32);
  SisParams p;
  p.q = wbs::NextPrime(uint64_t{1} << 61);
  p.rows = 9;
  p.cols = 17;
  p.beta_inf = 100;
  SisMatrix lazy(p, oracle, 5);
  SisMatrix cached(p, oracle, 5);
  cached.Materialize();
  SisSketchVector via_oracle(&lazy);
  SisSketchVector via_cache(&cached);
  uint64_t s = 12345;
  for (int t = 0; t < 500; ++t) {
    const size_t col = size_t(wbs::SplitMix64(&s) % p.cols);
    const int64_t delta = int64_t(wbs::SplitMix64(&s) % 4001) - 2000;
    ASSERT_TRUE(via_oracle.Update(col, delta).ok());
    ASSERT_TRUE(via_cache.Update(col, delta).ok());
  }
  EXPECT_EQ(via_oracle.value(), via_cache.value());
}

TEST(SisSketchVectorTest, UnmergeFromInvertsMergeFrom) {
  RandomOracle oracle(33);
  SisParams p = SmallParams();
  SisMatrix matrix(p, oracle, 6);
  SisSketchVector a(&matrix), b(&matrix);
  uint64_t s = 8;
  for (int t = 0; t < 50; ++t) {
    ASSERT_TRUE(a.Update(size_t(wbs::SplitMix64(&s) % p.cols),
                         int64_t(wbs::SplitMix64(&s) % 11) - 5)
                    .ok());
    ASSERT_TRUE(b.Update(size_t(wbs::SplitMix64(&s) % p.cols),
                         int64_t(wbs::SplitMix64(&s) % 11) - 5)
                    .ok());
  }
  const std::vector<uint64_t> a_before = a.value();
  ASSERT_TRUE(a.MergeFrom(b).ok());
  ASSERT_TRUE(a.UnmergeFrom(b).ok());
  EXPECT_EQ(a.value(), a_before);
}

}  // namespace
}  // namespace wbs::crypto
