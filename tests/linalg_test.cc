// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Z_q linear algebra, exact integer kernels, the Theorem 1.6 rank-decision
// sketch, and the streaming basis tracker corollary.

#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/random_oracle.h"
#include "linalg/matrix_zq.h"
#include "linalg/rank_sketch.h"

namespace wbs::linalg {
namespace {

constexpr uint64_t kQ = 1000003;

MatrixZq RandomMatrix(size_t r, size_t c, uint64_t q, wbs::RandomTape* tape) {
  MatrixZq m(r, c, q);
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < c; ++j) m.At(i, j) = tape->UniformInt(q);
  }
  return m;
}

// Builds an n x n matrix of known rank r: product of random n x r and r x n.
MatrixZq KnownRankMatrix(size_t n, size_t r, uint64_t q,
                         wbs::RandomTape* tape) {
  MatrixZq a = RandomMatrix(n, r, q, tape);
  MatrixZq b = RandomMatrix(r, n, q, tape);
  return a.Multiply(b);
}

TEST(MatrixZqTest, IdentityRank) {
  MatrixZq id = MatrixZq::Identity(8, kQ);
  EXPECT_EQ(id.Rank(), 8u);
  EXPECT_FALSE(id.KernelVector().has_value());
}

TEST(MatrixZqTest, ZeroMatrixRankZero) {
  MatrixZq z(5, 5, kQ);
  EXPECT_EQ(z.Rank(), 0u);
  EXPECT_TRUE(z.IsZero());
}

TEST(MatrixZqTest, SetAndAddReduceModQ) {
  MatrixZq m(2, 2, 7);
  m.Set(0, 0, -1);
  EXPECT_EQ(m.At(0, 0), 6u);
  m.AddAt(0, 0, 3);
  EXPECT_EQ(m.At(0, 0), 2u);
  m.Set(1, 1, 14);
  EXPECT_EQ(m.At(1, 1), 0u);
}

class KnownRankTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(KnownRankTest, RankRecovered) {
  auto [n, r] = GetParam();
  wbs::RandomTape tape(n * 131 + r);
  MatrixZq m = KnownRankMatrix(n, r, kQ, &tape);
  // Product of random full-rank-ish factors has rank exactly r w.h.p.
  EXPECT_EQ(m.Rank(), r);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KnownRankTest,
                         ::testing::Values(std::pair<size_t, size_t>{4, 1},
                                           std::pair<size_t, size_t>{6, 3},
                                           std::pair<size_t, size_t>{8, 8},
                                           std::pair<size_t, size_t>{12, 5},
                                           std::pair<size_t, size_t>{16, 15}));

TEST(MatrixZqTest, KernelVectorSatisfiesEquation) {
  wbs::RandomTape tape(9);
  for (int trial = 0; trial < 10; ++trial) {
    MatrixZq m = KnownRankMatrix(8, 5, kQ, &tape);
    auto x = m.KernelVector();
    ASSERT_TRUE(x.has_value());
    bool nonzero = false;
    for (uint64_t v : *x) nonzero |= v != 0;
    EXPECT_TRUE(nonzero);
    for (uint64_t v : m.Apply(*x)) EXPECT_EQ(v, 0u);
  }
}

TEST(MatrixZqTest, MultiplyAgainstHandComputed) {
  MatrixZq a(2, 2, 100), b(2, 2, 100);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  b.At(0, 0) = 5;
  b.At(0, 1) = 6;
  b.At(1, 0) = 7;
  b.At(1, 1) = 8;
  MatrixZq c = a.Multiply(b);
  EXPECT_EQ(c.At(0, 0), 19u);
  EXPECT_EQ(c.At(0, 1), 22u);
  EXPECT_EQ(c.At(1, 0), 43u);
  EXPECT_EQ(c.At(1, 1), 50u);
}

TEST(MatrixZqTest, ApplyMatchesMultiply) {
  wbs::RandomTape tape(10);
  MatrixZq m = RandomMatrix(4, 6, kQ, &tape);
  std::vector<uint64_t> x(6);
  for (auto& v : x) v = tape.UniformInt(kQ);
  MatrixZq xm(6, 1, kQ);
  for (size_t i = 0; i < 6; ++i) xm.At(i, 0) = x[i];
  MatrixZq y = m.Multiply(xm);
  std::vector<uint64_t> y2 = m.Apply(x);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(y.At(i, 0), y2[i]);
}

TEST(MatrixZqTest, SpaceBits) {
  MatrixZq m(3, 5, 1 << 20);
  EXPECT_EQ(m.SpaceBits(), 3u * 5u * 20u);
}

// ------------------------------------------------ ExactIntegerKernelVector --

TEST(IntKernelTest, SimpleDependentColumns) {
  // [1 1 2] has kernel (1, 1, -1)-ish solutions.
  std::vector<std::vector<int64_t>> m = {{1, 1, 2}};
  auto x = ExactIntegerKernelVector(m);
  ASSERT_TRUE(x.has_value());
  int64_t dot = (*x)[0] + (*x)[1] + 2 * (*x)[2];
  EXPECT_EQ(dot, 0);
  EXPECT_TRUE((*x)[0] != 0 || (*x)[1] != 0 || (*x)[2] != 0);
}

TEST(IntKernelTest, FullColumnRankReturnsNothing) {
  std::vector<std::vector<int64_t>> m = {{1, 0}, {0, 1}};
  EXPECT_FALSE(ExactIntegerKernelVector(m).has_value());
}

TEST(IntKernelTest, SignMatricesUpToRank24) {
  // The white-box AMS attack regime: r x (r+1) +-1 matrices.
  wbs::RandomTape tape(11);
  for (size_t r : {2u, 4u, 8u, 16u, 24u}) {
    std::vector<std::vector<int64_t>> m(r, std::vector<int64_t>(r + 1));
    for (auto& row : m) {
      for (auto& v : row) v = tape.SignBit();
    }
    auto x = ExactIntegerKernelVector(m);
    ASSERT_TRUE(x.has_value()) << "r=" << r;
    bool nonzero = false;
    for (size_t i = 0; i < r; ++i) {
      int64_t dot = 0;
      for (size_t j = 0; j <= r; ++j) dot += m[i][j] * (*x)[j];
      EXPECT_EQ(dot, 0) << "r=" << r << " row " << i;
    }
    for (int64_t v : *x) nonzero |= v != 0;
    EXPECT_TRUE(nonzero);
  }
}

TEST(IntKernelTest, WideMatrixUsesFreeColumn) {
  wbs::RandomTape tape(12);
  std::vector<std::vector<int64_t>> m(3, std::vector<int64_t>(8));
  for (auto& row : m) {
    for (auto& v : row) v = int64_t(tape.UniformInt(21)) - 10;
  }
  auto x = ExactIntegerKernelVector(m);
  ASSERT_TRUE(x.has_value());
  for (size_t i = 0; i < 3; ++i) {
    int64_t dot = 0;
    for (size_t j = 0; j < 8; ++j) dot += m[i][j] * (*x)[j];
    EXPECT_EQ(dot, 0);
  }
}

TEST(IntKernelTest, GcdReduced) {
  std::vector<std::vector<int64_t>> m = {{2, -2}};
  auto x = ExactIntegerKernelVector(m);
  ASSERT_TRUE(x.has_value());
  // Solution (1, 1), not (2, 2).
  EXPECT_EQ(std::abs((*x)[0]), 1);
  EXPECT_EQ(std::abs((*x)[1]), 1);
}

// ---------------------------------------------------- RankDecisionSketch --

class RankSketchTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RankSketchTest, DecidesRankCorrectly) {
  const size_t n = 12;
  const size_t k = GetParam();
  crypto::RandomOracle oracle(7);
  wbs::RandomTape tape(k * 17);
  for (size_t true_rank : {k - 1, k, std::min(n, k + 3)}) {
    if (true_rank < 1) continue;
    RankDecisionSketch alg(n, k, kQ, oracle, 100 + true_rank);
    MatrixZq a = KnownRankMatrix(n, true_rank, kQ, &tape);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (a.At(i, j) == 0) continue;
        ASSERT_TRUE(alg.Update({i, j, int64_t(a.At(i, j))}).ok());
      }
    }
    EXPECT_EQ(alg.Query(), true_rank >= k)
        << "k=" << k << " true rank=" << true_rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RankSketchTest,
                         ::testing::Values(1, 2, 4, 6, 8));

TEST(RankSketchTest2, TurnstileUpdatesCancel) {
  crypto::RandomOracle oracle(8);
  RankDecisionSketch alg(8, 3, kQ, oracle, 1);
  ASSERT_TRUE(alg.Update({0, 0, 5}).ok());
  ASSERT_TRUE(alg.Update({0, 0, -5}).ok());
  EXPECT_TRUE(alg.sketch().IsZero());
  EXPECT_FALSE(alg.Query());  // zero matrix has rank 0 < 3
}

TEST(RankSketchTest2, SpaceIsSketchOnly) {
  crypto::RandomOracle oracle(9);
  RankDecisionSketch alg(64, 4, kQ, oracle, 1);
  // k x n entries of log q bits; H itself is free (random oracle).
  EXPECT_EQ(alg.SpaceBits(), 4u * 64u * wbs::BitsForUniverse(kQ));
  EXPECT_LT(alg.SpaceBits(), 64u * 64u * wbs::BitsForUniverse(kQ));
}

TEST(RankSketchTest2, RejectsOutOfRange) {
  crypto::RandomOracle oracle(10);
  RankDecisionSketch alg(8, 2, kQ, oracle, 1);
  EXPECT_FALSE(alg.Update({8, 0, 1}).ok());
  EXPECT_FALSE(alg.Update({0, 8, 1}).ok());
}

TEST(RankSketchTest2, LowRankNeverMisclassifiedHigh) {
  // The "rank < k" direction is unconditional (no crypto needed): verify it
  // over many random low-rank inputs.
  crypto::RandomOracle oracle(11);
  wbs::RandomTape tape(13);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 10, k = 5;
    RankDecisionSketch alg(n, k, kQ, oracle, 200 + trial);
    MatrixZq a = KnownRankMatrix(n, k - 1, kQ, &tape);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (a.At(i, j) != 0) {
          ASSERT_TRUE(alg.Update({i, j, int64_t(a.At(i, j))}).ok());
        }
      }
    }
    EXPECT_FALSE(alg.Query()) << trial;
  }
}

// -------------------------------------------------- StreamingBasisTracker --

TEST(BasisTrackerTest, IndependentRowsAllKept) {
  crypto::RandomOracle oracle(12);
  StreamingBasisTracker tracker(8, 4, kQ, oracle, 1);
  // Standard basis rows are independent.
  for (size_t i = 0; i < 4; ++i) {
    std::vector<int64_t> row(8, 0);
    row[i] = 1;
    EXPECT_TRUE(tracker.OfferRow(row)) << i;
  }
  EXPECT_EQ(tracker.rank(), 4u);
}

TEST(BasisTrackerTest, DependentRowRejected) {
  crypto::RandomOracle oracle(13);
  StreamingBasisTracker tracker(6, 3, kQ, oracle, 2);
  std::vector<int64_t> r1 = {1, 2, 3, 0, 0, 0};
  std::vector<int64_t> r2 = {0, 1, 1, 0, 0, 0};
  std::vector<int64_t> sum = {1, 3, 4, 0, 0, 0};  // r1 + r2
  EXPECT_TRUE(tracker.OfferRow(r1));
  EXPECT_TRUE(tracker.OfferRow(r2));
  EXPECT_FALSE(tracker.OfferRow(sum));
  EXPECT_EQ(tracker.rank(), 2u);
  EXPECT_EQ(tracker.basis_indices(), (std::vector<size_t>{0, 1}));
}

TEST(BasisTrackerTest, ScalarMultipleRejected) {
  crypto::RandomOracle oracle(14);
  StreamingBasisTracker tracker(4, 2, kQ, oracle, 3);
  EXPECT_TRUE(tracker.OfferRow({1, -2, 3, 4}));
  EXPECT_FALSE(tracker.OfferRow({2, -4, 6, 8}));
}

TEST(BasisTrackerTest, MatchesExactRankOnRandomStreams) {
  crypto::RandomOracle oracle(15);
  wbs::RandomTape tape(16);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t n = 10, max_rank = 6;
    StreamingBasisTracker tracker(n, max_rank, kQ, oracle, 40 + trial);
    // Generate rows in a rank-r subspace.
    const size_t r = 3;
    std::vector<std::vector<int64_t>> basis(r, std::vector<int64_t>(n));
    for (auto& row : basis) {
      for (auto& v : row) v = int64_t(tape.UniformInt(7)) - 3;
    }
    for (int rows = 0; rows < 12; ++rows) {
      std::vector<int64_t> row(n, 0);
      for (size_t b = 0; b < r; ++b) {
        int64_t coef = int64_t(tape.UniformInt(5)) - 2;
        for (size_t j = 0; j < n; ++j) row[j] += coef * basis[b][j];
      }
      tracker.OfferRow(row);
    }
    EXPECT_LE(tracker.rank(), r) << trial;
  }
}

TEST(BasisTrackerTest, SpaceCompressed) {
  crypto::RandomOracle oracle(16);
  const size_t n = 256, max_rank = 4;
  StreamingBasisTracker tracker(n, max_rank, kQ, oracle, 5);
  for (size_t i = 0; i < 4; ++i) {
    std::vector<int64_t> row(n, 0);
    row[i * 10] = 1;
    tracker.OfferRow(row);
  }
  // Stored rows are d = 2k+2 << n field elements wide.
  EXPECT_LT(tracker.SpaceBits(), 4 * n * wbs::BitsForUniverse(kQ) / 4);
}

}  // namespace
}  // namespace wbs::linalg
