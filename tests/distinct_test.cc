// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// L0 estimation: Algorithm 5 (SIS chunk sketches, Theorem 1.5) and the
// white-box-breakable baselines (NaiveSumL0, KmvDistinct).

#include <gtest/gtest.h>

#include <cmath>

#include "common/bits.h"
#include "common/modmath.h"
#include "common/random.h"
#include "distinct/l0_estimator.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

namespace wbs::distinct {
namespace {

TEST(SisL0ParamsTest, DeriveShapes) {
  SisL0Params p = SisL0Params::Derive(1 << 16, 0.5, 0.25, 1000);
  EXPECT_EQ(p.chunk_width, 256u);   // n^0.5
  EXPECT_EQ(p.num_chunks, 256u);    // n^{1-eps}
  EXPECT_GE(p.sketch_rows, 2u);     // n^{c eps} = 2^{16*0.125} = 4
  EXPECT_TRUE(wbs::IsPrime(p.q));
  EXPECT_GE(p.q, p.beta_inf * p.chunk_width);
}

TEST(SisL0ParamsTest, LargerEpsMeansFewerChunks) {
  SisL0Params a = SisL0Params::Derive(1 << 16, 0.25, 0.2, 100);
  SisL0Params b = SisL0Params::Derive(1 << 16, 0.75, 0.2, 100);
  EXPECT_GT(a.num_chunks, b.num_chunks);
  EXPECT_LT(a.chunk_width, b.chunk_width);
}

crypto::RandomOracle SharedOracle() { return crypto::RandomOracle(42); }

TEST(SisL0Test, EmptyStreamIsZero) {
  auto oracle = SharedOracle();
  SisL0Estimator alg(SisL0Params::Derive(1 << 12, 0.5, 0.25, 100), oracle, 0);
  EXPECT_DOUBLE_EQ(alg.Query(), 0.0);
}

TEST(SisL0Test, SingleItemGivesOne) {
  auto oracle = SharedOracle();
  SisL0Estimator alg(SisL0Params::Derive(1 << 12, 0.5, 0.25, 100), oracle, 0);
  ASSERT_TRUE(alg.Update({17, 3}).ok());
  EXPECT_DOUBLE_EQ(alg.Query(), 1.0);
}

TEST(SisL0Test, DeletionCancelsExactly) {
  auto oracle = SharedOracle();
  SisL0Estimator alg(SisL0Params::Derive(1 << 12, 0.5, 0.25, 100), oracle, 0);
  ASSERT_TRUE(alg.Update({17, 3}).ok());
  ASSERT_TRUE(alg.Update({17, -3}).ok());
  EXPECT_DOUBLE_EQ(alg.Query(), 0.0);
}

// The Theorem 1.5 sandwich: L0 / n^eps <= answer <= L0 — across epsilons
// and support sizes on honest turnstile churn streams.
class SisL0SandwichTest
    : public ::testing::TestWithParam<std::pair<double, uint64_t>> {};

TEST_P(SisL0SandwichTest, MultiplicativeGuarantee) {
  auto [eps, live] = GetParam();
  const uint64_t n = 1 << 14;
  auto oracle = SharedOracle();
  SisL0Params params = SisL0Params::Derive(n, eps, 0.25, 1000);
  SisL0Estimator alg(params, oracle, live);
  wbs::RandomTape tape(live * 7 + uint64_t(eps * 100));
  auto s = stream::InsertDeleteChurnStream(n, live, 200, &tape);
  stream::FrequencyOracle truth(n);
  for (const auto& u : s) {
    truth.Add(u.item, u.delta);
    ASSERT_TRUE(alg.Update(u).ok());
  }
  const double l0 = double(truth.L0());
  const double answer = alg.Query();
  EXPECT_LE(answer, l0 + 1e-9);
  EXPECT_GE(answer * double(params.chunk_width), l0 - 1e-9)
      << "eps=" << eps << " live=" << live;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SisL0SandwichTest,
    ::testing::Values(std::pair{0.3, uint64_t{50}},
                      std::pair{0.3, uint64_t{2000}},
                      std::pair{0.5, uint64_t{50}},
                      std::pair{0.5, uint64_t{2000}},
                      std::pair{0.7, uint64_t{500}}));

TEST(SisL0Test, SpaceScalesWithChunksTimesRows) {
  const uint64_t n = 1 << 14;
  auto oracle = SharedOracle();
  SisL0Params p = SisL0Params::Derive(n, 0.5, 0.25, 100);
  SisL0Estimator alg(p, oracle, 1);
  EXPECT_EQ(alg.SpaceBits(),
            p.num_chunks * p.sketch_rows * wbs::BitsForUniverse(p.q));
  // Sublinear in n * log: far below storing the frequency vector.
  EXPECT_LT(alg.SpaceBits(), n * 8);
}

TEST(SisL0Test, RejectsOutOfUniverse) {
  auto oracle = SharedOracle();
  SisL0Estimator alg(SisL0Params::Derive(100, 0.5, 0.25, 10), oracle, 0);
  EXPECT_FALSE(alg.Update({1000, 1}).ok());
}

TEST(SisL0Test, FoolingRequiresSisSolution) {
  // Any turnstile stream that leaves a chunk's frequency vector nonzero but
  // its sketch zero IS a SIS solution for the shared matrix. Verify the
  // contrapositive experimentally: random small-entry vectors never zero
  // the sketch.
  const uint64_t n = 1 << 12;
  auto oracle = SharedOracle();
  SisL0Params p = SisL0Params::Derive(n, 0.5, 0.25, 100);
  SisL0Estimator alg(p, oracle, 99);
  wbs::RandomTape tape(55);
  for (int trial = 0; trial < 200; ++trial) {
    // Random +-1 vector on chunk 0, net nonzero.
    uint64_t item = tape.UniformInt(p.chunk_width);
    ASSERT_TRUE(alg.Update({item, tape.SignBit()}).ok());
  }
  // After random updates the support is almost surely nonzero and so is the
  // answer (the reverse would mean we stumbled on a SIS solution).
  EXPECT_GE(alg.Query(), 1.0);
}

// ------------------------------------------------------------- NaiveSumL0 --

TEST(NaiveSumL0Test, CountsChunksHonestly) {
  NaiveSumL0 alg(1 << 10, 32);
  ASSERT_TRUE(alg.Update({0, 1}).ok());
  ASSERT_TRUE(alg.Update({100, 2}).ok());
  EXPECT_DOUBLE_EQ(alg.Query(), 2.0);
}

TEST(NaiveSumL0Test, WhiteBoxCancellationAttack) {
  // The one-line attack every non-cryptographic linear sketch admits:
  // insert +1 at coordinate a and -1 at coordinate b in the same chunk.
  NaiveSumL0 alg(1 << 10, 32);
  ASSERT_TRUE(alg.Update({3, 1}).ok());
  ASSERT_TRUE(alg.Update({7, -1}).ok());
  // True L0 is 2; the sketch says 0 — broken.
  EXPECT_DOUBLE_EQ(alg.Query(), 0.0);
}

TEST(NaiveSumL0Test, SisSketchResistsTheSameAttack) {
  // The identical +1/-1 pair does NOT cancel the SIS sketch (the columns of
  // A differ), which is the entire point of Algorithm 5.
  auto oracle = SharedOracle();
  SisL0Estimator alg(SisL0Params::Derive(1 << 10, 0.5, 0.3, 10), oracle, 1);
  ASSERT_TRUE(alg.Update({3, 1}).ok());
  ASSERT_TRUE(alg.Update({7, -1}).ok());
  EXPECT_GE(alg.Query(), 1.0);
}

// ------------------------------------------------------------ KmvDistinct --

TEST(KmvTest, ObliviousStreamsEstimateWell) {
  int ok = 0;
  for (int trial = 0; trial < 5; ++trial) {
    wbs::RandomTape tape(70 + trial);
    KmvDistinct alg(64, &tape);
    const uint64_t distinct = 5000;
    for (uint64_t i = 0; i < distinct; ++i) {
      ASSERT_TRUE(alg.Update({i}).ok());
    }
    double est = alg.Query();
    if (std::abs(est - double(distinct)) <= 0.5 * double(distinct)) ++ok;
  }
  EXPECT_GE(ok, 4);
}

TEST(KmvTest, DuplicatesDoNotInflate) {
  wbs::RandomTape tape(75);
  KmvDistinct alg(32, &tape);
  for (int rep = 0; rep < 100; ++rep) {
    for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(alg.Update({i}).ok());
  }
  EXPECT_LE(alg.Query(), 15.0);
}

TEST(KmvTest, BlindingAdversaryFreezesEstimate) {
  // The white-box attack of Section 1: the adversary reads the hash seed
  // from the exposed state and inserts only items hashing above the k-th
  // minimum. True L0 grows ~unboundedly; the estimate never moves.
  wbs::RandomTape tape(80);
  KmvDistinct alg(32, &tape);
  const uint64_t universe = 1 << 22;
  // Warm up: fill the sketch with k arbitrary items.
  stream::FrequencyOracle truth(universe);
  for (uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(alg.Update({universe - 1 - i}).ok());
    truth.Add(universe - 1 - i);
  }
  KmvBlindingAdversary adv(&alg, universe);
  auto result = core::RunGame<stream::ItemUpdate, double>(
      &alg, &adv, 5000,
      [&](const stream::ItemUpdate& u) { truth.Add(u.item); },
      [&](uint64_t round, const double& answer) {
        if (round < 2000) return true;  // allow warm-up and 4x slack
        return answer >= double(truth.L0()) / 4.0;
      });
  EXPECT_FALSE(result.algorithm_survived)
      << "the blinding adversary must defeat KMV";
  // And the SIS estimator on the same update sequence stays sandwiched (it
  // is insertion-compatible: deltas of +1).
}

TEST(KmvTest, ThresholdExposedToAdversary) {
  wbs::RandomTape tape(85);
  KmvDistinct alg(4, &tape);
  EXPECT_EQ(alg.Threshold(), ~uint64_t{0});
  for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(alg.Update({i}).ok());
  EXPECT_LT(alg.Threshold(), ~uint64_t{0});
}

TEST(KmvTest, SpaceBitsLinearInK) {
  wbs::RandomTape tape(86);
  KmvDistinct alg(16, &tape);
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(alg.Update({i}).ok());
  EXPECT_EQ(alg.SpaceBits(), 64u + 16u * 64u);
}

}  // namespace
}  // namespace wbs::distinct
