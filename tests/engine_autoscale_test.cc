// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The autoscaling control plane (PR 9): slot-level migration (MoveSlots)
// and the load-driven controller that issues reshard operations itself.
//
// The load-bearing guarantees pinned here:
//   * the slot table's owned-slot bookkeeping is exact under every
//     mutation (MakeInitial, WithAddedShards, WithMovedSlots), and
//     WithMovedSlots rejects malformed requests without touching the base;
//   * a slot move is ROUTING-ONLY: summaries right after a MoveSlots are
//     bit-identical to right before for all six builtin families (no
//     sketch state moves — the source keeps its frozen prefix
//     merge-visible), across in-process, loopback, and TCP placements;
//   * a run that peels slots mid-ingest and keeps ingesting ends
//     bit-identical to a never-moved reference for the linear families
//     (ams_f2, sis_l0, rank_decision), across all three placements —
//     the same merge-over-all-shards-ever argument as scale-out;
//   * the controller scales out on a hot load (manual-mode EvaluateOnce,
//     deterministic) and the post-scale-out answers still equal a static
//     single-topology reference;
//   * anti-flap hysteresis: under a flapping load the controller takes at
//     most ONE reshard action per cooldown window — every further due
//     decision is suppressed and counted;
//   * a hot slot is rebalanced via MoveSlots WITHOUT a whole-shard
//     handoff (shard count unchanged, only slot ownership shifts), and
//     the answers still match a static reference;
//   * a dead shard is never selected as a migration destination — by the
//     controller's destination picker, and by MoveSlots itself (direct
//     calls onto a dead destination fail Unavailable with the topology
//     untouched).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/autoscaler.h"
#include "engine/backend.h"
#include "engine/client.h"
#include "engine/remote_backend.h"
#include "engine/sharded_ingestor.h"
#include "engine/topology.h"
#include "stream/workload.h"

#include "engine_test_util.h"

namespace wbs::engine {
namespace {

SketchConfig TestConfig(uint64_t universe, uint64_t seed) {
  return SketchConfig{}.WithUniverse(universe).WithSeed(seed);
}

stream::TurnstileStream ZipfTurnstile(uint64_t universe, size_t n,
                                      uint64_t seed) {
  wbs::RandomTape tape(seed);
  tape.set_logging(false);
  auto items = stream::ZipfStream(universe, n, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  return s;
}

struct BackendCase {
  const char* name;
  BackendFactory factory;
};

/// The three placements slot moves must be transparent to. TCP here is the
/// self-hosted factory: every shard behind a real localhost socket.
std::vector<BackendCase> SlotMovePlacements() {
  return {{"inprocess", InProcessBackendFactory()},
          {"loopback", LoopbackBackendFactory()},
          {"tcp", TcpBackendFactory()}};
}

/// Element-wise bit-identity of two summaries.
void ExpectSummariesIdentical(const SketchSummary& got,
                              const SketchSummary& want,
                              const std::string& context) {
  EXPECT_EQ(got.has_scalar, want.has_scalar) << context;
  EXPECT_EQ(got.scalar, want.scalar) << context;
  EXPECT_EQ(got.updates, want.updates) << context;
  ASSERT_EQ(got.items.size(), want.items.size()) << context;
  for (size_t i = 0; i < got.items.size(); ++i) {
    EXPECT_EQ(got.items[i].item, want.items[i].item) << context;
    EXPECT_EQ(got.items[i].estimate, want.items[i].estimate) << context;
  }
}

/// A client with the autoscaler in MANUAL mode (no controller thread):
/// tests drive it with EvaluateOnce, so every decision is a deterministic
/// function of the submitted load.
std::unique_ptr<Client> MakeAutoscaleClient(
    std::vector<std::string> sketches, const SketchConfig& cfg, size_t shards,
    size_t threads, AutoscaleOptions autoscale, size_t slot_sample_shift,
    BackendFactory backend = InProcessBackendFactory()) {
  ClientOptions opts;
  opts.ingest.num_shards = shards;
  opts.ingest.num_threads = threads;
  opts.ingest.sketches = std::move(sketches);
  opts.ingest.config = cfg;
  opts.ingest.backend = std::move(backend);
  opts.ingest.slot_sample_shift = slot_sample_shift;
  opts.ingest.autoscale = std::move(autoscale);
  opts.ingest.autoscale.enabled = true;
  opts.ingest.autoscale.evaluation_interval_ms = 0;  // manual
  auto client = Client::Create(opts);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

bool PollUntil(const std::function<bool()>& pred, int timeout_ms = 30000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// First `n` distinct items (from `start`) the INITIAL topology routes to
/// `shard` — lets a test aim load at a specific shard.
std::vector<uint64_t> ItemsForShard(size_t shard, size_t num_shards,
                                    uint64_t universe, size_t n,
                                    uint64_t start = 0) {
  std::vector<uint64_t> items;
  for (uint64_t item = start; item < universe && items.size() < n; ++item) {
    if (ShardedIngestor::ShardOf(item, num_shards) == shard) {
      items.push_back(item);
    }
  }
  EXPECT_EQ(items.size(), n) << "universe too small for shard " << shard;
  return items;
}

Status SubmitAll(Client* client, const stream::TurnstileStream& s,
                 size_t batch = 1024) {
  for (size_t off = 0; off < s.size(); off += batch) {
    auto t = client->Submit(s.data() + off, std::min(batch, s.size() - off));
    if (!t.ok()) return t.status();
  }
  return client->Flush();
}

// ------------------------------------------------- slot-table bookkeeping --

TEST(SlotTableTest, OwnedSlotBookkeepingIsExact) {
  auto base = ShardTopology::MakeInitial(4, 16, nullptr);  // 64 slots
  size_t total = 0;
  for (size_t s = 0; s < base->num_shards(); ++s) {
    size_t brute = 0;
    for (uint32_t owner : base->slot_to_shard) {
      if (owner == s) ++brute;
    }
    EXPECT_EQ(base->SlotsOwnedBy(s), brute) << "shard " << s;
    auto ids = base->OwnedSlotIds(s);
    ASSERT_EQ(ids.size(), brute) << "shard " << s;
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    for (uint32_t id : ids) EXPECT_EQ(base->slot_to_shard[id], s);
    total += brute;
  }
  EXPECT_EQ(total, base->num_slots());

  // Scale-out keeps the counts exact for old and new shards alike.
  std::vector<ShardPlacement> added(2);
  auto grown = ShardTopology::WithAddedShards(*base, added);
  for (size_t s = 0; s < grown->num_shards(); ++s) {
    size_t brute = 0;
    for (uint32_t owner : grown->slot_to_shard) {
      if (owner == s) ++brute;
    }
    EXPECT_EQ(grown->SlotsOwnedBy(s), brute) << "grown shard " << s;
  }

  // A slot move re-points exactly the requested slots and bumps BOTH
  // generations (routing changed, so routers must re-scatter).
  auto owned0 = base->OwnedSlotIds(0);
  ASSERT_GE(owned0.size(), 4u);
  std::vector<uint32_t> slots(owned0.begin(), owned0.begin() + 3);
  auto moved = ShardTopology::WithMovedSlots(*base, slots, 2);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  const TopologyView& v = *moved.value();
  EXPECT_EQ(v.generation, base->generation + 1);
  EXPECT_EQ(v.routing_generation, base->routing_generation + 1);
  EXPECT_EQ(v.SlotsOwnedBy(0), base->SlotsOwnedBy(0) - 3);
  EXPECT_EQ(v.SlotsOwnedBy(2), base->SlotsOwnedBy(2) + 3);
  for (uint32_t slot : slots) EXPECT_EQ(v.slot_to_shard[slot], 2u);
  // Untouched slots keep their owner.
  size_t changed = 0;
  for (size_t slot = 0; slot < v.num_slots(); ++slot) {
    if (v.slot_to_shard[slot] != base->slot_to_shard[slot]) ++changed;
  }
  EXPECT_EQ(changed, slots.size());

  // Duplicate slot ids in one request move (and count) once.
  auto dup =
      ShardTopology::WithMovedSlots(*base, {owned0[3], owned0[3]}, 1);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup.value()->SlotsOwnedBy(0), base->SlotsOwnedBy(0) - 1);
  EXPECT_EQ(dup.value()->SlotsOwnedBy(1), base->SlotsOwnedBy(1) + 1);
}

TEST(SlotTableTest, WithMovedSlotsRejectsMalformedRequests) {
  auto base = ShardTopology::MakeInitial(3, 16, nullptr);  // 48 slots
  auto owned0 = base->OwnedSlotIds(0);
  auto owned1 = base->OwnedSlotIds(1);
  ASSERT_FALSE(owned0.empty());
  ASSERT_FALSE(owned1.empty());

  auto empty = ShardTopology::WithMovedSlots(*base, {}, 1);
  EXPECT_EQ(empty.status().code(), Status::Code::kInvalidArgument);
  auto bad_dest = ShardTopology::WithMovedSlots(*base, {owned0[0]}, 3);
  EXPECT_EQ(bad_dest.status().code(), Status::Code::kOutOfRange);
  auto bad_slot = ShardTopology::WithMovedSlots(
      *base, {uint32_t(base->num_slots())}, 1);
  EXPECT_EQ(bad_slot.status().code(), Status::Code::kOutOfRange);
  auto two_sources =
      ShardTopology::WithMovedSlots(*base, {owned0[0], owned1[0]}, 2);
  EXPECT_EQ(two_sources.status().code(), Status::Code::kInvalidArgument);
  auto self_move = ShardTopology::WithMovedSlots(*base, {owned0[0]}, 0);
  EXPECT_EQ(self_move.status().code(), Status::Code::kInvalidArgument);
}

// --------------------------------------------------- slot-move bit fidelity --

// A slot move carries NO sketch state (the source keeps its frozen prefix
// merge-visible), so summaries right after MoveSlots must be bit-identical
// to right before — for ALL SIX builtin families, on every placement the
// engine supports, including real TCP sockets. rank_decision is covered by
// the mid-ingest suite below (it needs its own matrix-coordinate stream).
TEST(SlotMoveFidelityTest, SummariesIdenticalAcrossTheMove) {
  const uint64_t universe = 1 << 12;
  auto s = ZipfTurnstile(universe, 20000, 901);
  SketchConfig cfg = TestConfig(universe, 91);
  const std::vector<std::string> sketches = {
      "misra_gries", "ams_f2", "sis_l0", "robust_hh", "crhf_hh"};
  // The engine builds its initial table with the same deterministic layout,
  // so the slot ids each shard owns are computable up front.
  auto initial = ShardTopology::MakeInitial(4, 16, nullptr);
  auto owned0 = initial->OwnedSlotIds(0);
  auto owned2 = initial->OwnedSlotIds(2);

  for (const BackendCase& placement : SlotMovePlacements()) {
    auto client = MakeClient(sketches, cfg, 4, 2, placement.factory);
    ASSERT_TRUE(Replay(client.get(), s, 1024, ReplayChurn::kDisabled).ok())
        << placement.name;
    ASSERT_TRUE(client->Flush().ok()) << placement.name;

    std::vector<SketchSummary> before;
    for (const std::string& name : sketches) {
      auto summary = client->RawSummary(client->Handle(name).value());
      ASSERT_TRUE(summary.ok()) << name << " on " << placement.name;
      before.push_back(std::move(summary).value());
    }
    const uint64_t generation = client->Topology().generation;

    // Peel half of shard 0's slots onto shard 1, then a few of shard 2's
    // onto shard 3 — two sources, two destinations, one table each.
    std::vector<uint32_t> first(owned0.begin(),
                                owned0.begin() + owned0.size() / 2);
    ASSERT_TRUE(client->MoveSlots(0, first, 1).ok()) << placement.name;
    std::vector<uint32_t> second(owned2.begin(), owned2.begin() + 4);
    ASSERT_TRUE(client->MoveSlots(2, second, 3).ok()) << placement.name;
    EXPECT_EQ(client->Topology().generation, generation + 2)
        << placement.name;
    EXPECT_EQ(client->Topology().slots_per_shard[0],
              owned0.size() - first.size())
        << placement.name;
    EXPECT_EQ(client->Topology().slots_per_shard[1],
              owned0.size() + first.size())
        << placement.name;

    // The move is observable in the trace, not in any answer.
    bool saw_move_span = false;
    for (const auto& span : client->TraceSpans()) {
      if (span.name != "move_slots") continue;
      saw_move_span = true;
      EXPECT_GT(span.Attr("slots"), 0u) << placement.name;
    }
    EXPECT_TRUE(saw_move_span) << placement.name;

    for (size_t i = 0; i < sketches.size(); ++i) {
      auto after = client->RawSummary(client->Handle(sketches[i]).value());
      ASSERT_TRUE(after.ok()) << sketches[i] << " on " << placement.name;
      ExpectSummariesIdentical(
          after.value(), before[i],
          sketches[i] + " across MoveSlots on " + placement.name);
    }
    ASSERT_TRUE(client->Finish().ok()) << placement.name;
  }
}

// A run that peels slots mid-stream and KEEPS INGESTING must end
// bit-identical to a run that never moved anything, for the linear
// families — answers merge over all shards ever, so re-partitioning the
// suffix is invisible. Pinned across all three placements.
TEST(SlotMoveFidelityTest, MidIngestMoveSlotsBitIdenticalOnZipf) {
  const uint64_t universe = 1 << 12;
  auto s = ZipfTurnstile(universe, 24000, 902);
  SketchConfig cfg = TestConfig(universe, 93);
  const std::vector<std::string> sketches = {"ams_f2", "sis_l0"};
  auto initial = ShardTopology::MakeInitial(4, 16, nullptr);
  auto owned1 = initial->OwnedSlotIds(1);
  std::vector<uint32_t> slots(owned1.begin(), owned1.begin() + 6);

  auto reference =
      MakeClient(sketches, cfg, 4, 2, InProcessBackendFactory());
  ASSERT_TRUE(Replay(reference.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());

  for (const BackendCase& placement : SlotMovePlacements()) {
    auto moved = MakeClient(sketches, cfg, 4, 2, placement.factory);
    const size_t batch = 1024;
    const size_t batches = (s.size() + batch - 1) / batch;
    size_t index = 0;
    for (size_t off = 0; off < s.size(); off += batch, ++index) {
      if (index == batches / 2) {
        ASSERT_TRUE(moved->MoveSlots(1, slots, 2).ok()) << placement.name;
      }
      ASSERT_TRUE(
          moved->Submit(s.data() + off, std::min(batch, s.size() - off)).ok())
          << placement.name;
    }
    ASSERT_TRUE(moved->Finish().ok()) << placement.name;
    for (const std::string& name : sketches) {
      auto got = moved->QueryScalar(moved->Handle(name).value());
      auto want = reference->QueryScalar(reference->Handle(name).value());
      ASSERT_TRUE(got.ok() && want.ok()) << name << " " << placement.name;
      EXPECT_EQ(got.value().value, want.value().value)
          << name << " on " << placement.name;
      EXPECT_EQ(got.value().updates, want.value().updates)
          << name << " on " << placement.name;
    }
  }
}

TEST(SlotMoveFidelityTest, MidIngestMoveSlotsBitIdenticalOnRankDecision) {
  SketchConfig cfg = TestConfig(1, 17);
  cfg.rank.n = 32;
  cfg.rank.k = 8;
  stream::TurnstileStream diag;
  for (size_t i = 0; i < 8; ++i) {
    diag.push_back({uint64_t(i) * cfg.rank.n + i, 1});
  }
  auto reference =
      MakeClient({"rank_decision"}, cfg, 2, 1, InProcessBackendFactory());
  ASSERT_TRUE(Replay(reference.get(), diag, 2, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());

  auto initial = ShardTopology::MakeInitial(2, 16, nullptr);
  auto owned0 = initial->OwnedSlotIds(0);
  std::vector<uint32_t> slots(owned0.begin(), owned0.begin() + 4);
  auto moved =
      MakeClient({"rank_decision"}, cfg, 2, 1, InProcessBackendFactory());
  size_t index = 0;
  for (size_t off = 0; off < diag.size(); off += 2, ++index) {
    if (index == 2) {
      ASSERT_TRUE(moved->MoveSlots(0, slots, 1).ok());
    }
    ASSERT_TRUE(moved->Submit(diag.data() + off, 2).ok());
  }
  ASSERT_TRUE(moved->Finish().ok());
  auto got = moved->QueryRank(moved->Handle("rank_decision").value());
  auto want =
      reference->QueryRank(reference->Handle("rank_decision").value());
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got.value().rank_at_least_k, want.value().rank_at_least_k);
  EXPECT_TRUE(got.value().rank_at_least_k);
}

// ------------------------------------------------------- controller: scale --

// The controller scales out on a synthetic hot load. Manual mode: the
// first EvaluateOnce only records counter baselines, the second sees the
// ingested delta as a rate far above the (tiny) watermark and issues
// AddShards. Post-scale-out answers equal a static reference — the
// controller can reshard whenever it likes without touching correctness.
TEST(AutoscaleTest, ScaleOutFiresOnHotLoadAndPreservesAnswers) {
  const uint64_t universe = 1 << 12;
  auto s = ZipfTurnstile(universe, 24000, 903);
  SketchConfig cfg = TestConfig(universe, 95);
  const std::vector<std::string> sketches = {"ams_f2", "sis_l0"};

  AutoscaleOptions autoscale;
  autoscale.high_watermark_updates_per_sec = 1.0;  // any load trips it
  autoscale.cooldown_ms = 0;
  autoscale.max_shards = 4;
  autoscale.scale_step = 2;
  auto client = MakeAutoscaleClient(sketches, cfg, 2, 2, autoscale,
                                    /*slot_sample_shift=*/0);
  ASSERT_NE(client->autoscaler(), nullptr);

  const size_t half = (s.size() / 2 / 1024) * 1024;
  stream::TurnstileStream head(s.begin(), s.begin() + half);
  stream::TurnstileStream tail(s.begin() + half, s.end());

  // Rates are counter DELTAS between evaluations: the first call only
  // records baselines, so it precedes the load it must not see.
  AutoscaleDecision baseline = client->autoscaler()->EvaluateOnce();
  EXPECT_EQ(baseline.kind, AutoscaleDecision::Kind::kNone);
  ASSERT_TRUE(SubmitAll(client.get(), head).ok());
  AutoscaleDecision decision = client->autoscaler()->EvaluateOnce();
  ASSERT_EQ(decision.kind, AutoscaleDecision::Kind::kScaleOut);
  ASSERT_TRUE(decision.status.ok()) << decision.status.ToString();
  EXPECT_GT(decision.mean_rate, 1.0);
  EXPECT_EQ(client->ingestor().num_shards(), 4u);

  MetricsSnapshot snap = client->Metrics();
  EXPECT_EQ(snap.Value("engine.autoscaler.scaleouts_total"), 1u);
  EXPECT_EQ(snap.Value("engine.autoscaler.shards_added_total"), 2u);
  bool saw_decision_span = false;
  for (const auto& span : client->TraceSpans()) {
    saw_decision_span |= span.name == "autoscale.decision";
  }
  EXPECT_TRUE(saw_decision_span);

  ASSERT_TRUE(SubmitAll(client.get(), tail).ok());
  ASSERT_TRUE(client->Finish().ok());

  auto reference =
      MakeClient(sketches, cfg, 2, 2, InProcessBackendFactory());
  ASSERT_TRUE(Replay(reference.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());
  for (const std::string& name : sketches) {
    auto got = client->QueryScalar(client->Handle(name).value());
    auto want = reference->QueryScalar(reference->Handle(name).value());
    ASSERT_TRUE(got.ok() && want.ok()) << name;
    EXPECT_EQ(got.value().value, want.value().value) << name;
    EXPECT_EQ(got.value().updates, uint64_t(s.size())) << name;
  }
}

// Flapping load: the signal stays above the watermark across many
// evaluation cycles, but the cooldown window lets at most ONE reshard
// through — every further due decision is kCooldown, counted, and leaves
// the topology alone.
TEST(AutoscaleTest, HysteresisAtMostOneReshardPerCooldownWindow) {
  const uint64_t universe = 1 << 12;
  auto s = ZipfTurnstile(universe, 16000, 904);
  SketchConfig cfg = TestConfig(universe, 97);

  AutoscaleOptions autoscale;
  autoscale.high_watermark_updates_per_sec = 1.0;
  autoscale.cooldown_ms = 3'600'000;  // far longer than the test
  autoscale.max_shards = 8;
  autoscale.scale_step = 1;
  auto client = MakeAutoscaleClient({"ams_f2"}, cfg, 2, 2, autoscale,
                                    /*slot_sample_shift=*/0);

  stream::TurnstileStream burst(s.begin(), s.begin() + 2048);
  ASSERT_TRUE(SubmitAll(client.get(), burst).ok());
  EXPECT_EQ(client->autoscaler()->EvaluateOnce().kind,
            AutoscaleDecision::Kind::kNone);  // baselines only
  ASSERT_TRUE(SubmitAll(client.get(), burst).ok());
  AutoscaleDecision first = client->autoscaler()->EvaluateOnce();
  ASSERT_EQ(first.kind, AutoscaleDecision::Kind::kScaleOut);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(client->ingestor().num_shards(), 3u);

  // The load keeps flapping; the window keeps the controller still.
  const size_t kFlaps = 5;
  for (size_t i = 0; i < kFlaps; ++i) {
    ASSERT_TRUE(SubmitAll(client.get(), burst).ok());
    AutoscaleDecision flap = client->autoscaler()->EvaluateOnce();
    EXPECT_EQ(flap.kind, AutoscaleDecision::Kind::kCooldown) << "flap " << i;
  }
  EXPECT_EQ(client->ingestor().num_shards(), 3u);
  MetricsSnapshot snap = client->Metrics();
  EXPECT_EQ(snap.Value("engine.autoscaler.scaleouts_total"), 1u);
  EXPECT_EQ(snap.Value("engine.autoscaler.cooldown_suppressed_total"),
            uint64_t(kFlaps));
  ASSERT_TRUE(client->Finish().ok());
}

// The acceptance scenario: ONE hot slot dominates a shard's load. The
// controller rebalances it with a slot-level MoveSlots — no whole-shard
// handoff, no scale-out, shard count unchanged — and the answers still
// equal a static single-shard reference.
TEST(AutoscaleTest, HotSlotPeeledWithoutWholeShardHandoff) {
  const uint64_t universe = 1 << 12;
  SketchConfig cfg = TestConfig(universe, 99);
  const std::vector<std::string> sketches = {"ams_f2", "sis_l0"};

  // Aim the heat: one dominant item on shard 0 (one hot slot), a little
  // spread elsewhere so every rate is nonzero.
  const uint64_t hot = ItemsForShard(0, 2, universe, 1)[0];
  auto shard0_extras = ItemsForShard(0, 2, universe, 8, hot + 1);
  auto shard1_items = ItemsForShard(1, 2, universe, 8);
  stream::TurnstileStream skew;
  for (size_t i = 0; i < 8000; ++i) skew.push_back({hot, 1});
  for (uint64_t item : shard0_extras) {
    for (size_t i = 0; i < 50; ++i) skew.push_back({item, 1});
  }
  for (uint64_t item : shard1_items) {
    for (size_t i = 0; i < 50; ++i) skew.push_back({item, 1});
  }

  AutoscaleOptions autoscale;
  autoscale.high_watermark_updates_per_sec = 0.0;  // no rate scale-out
  autoscale.scale_on_valve_pressure = false;       // imbalance only
  autoscale.imbalance_ratio = 1.5;
  autoscale.cooldown_ms = 0;
  autoscale.max_slots_per_move = 2;
  auto client = MakeAutoscaleClient(sketches, cfg, 2, 2, autoscale,
                                    /*slot_sample_shift=*/1);

  EXPECT_EQ(client->autoscaler()->EvaluateOnce().kind,
            AutoscaleDecision::Kind::kNone);  // baselines
  ASSERT_TRUE(SubmitAll(client.get(), skew).ok());
  AutoscaleDecision decision = client->autoscaler()->EvaluateOnce();
  ASSERT_EQ(decision.kind, AutoscaleDecision::Kind::kMoveSlots);
  ASSERT_TRUE(decision.status.ok()) << decision.status.ToString();
  EXPECT_EQ(decision.source, 0u);
  EXPECT_EQ(decision.dest, 1u);
  ASSERT_FALSE(decision.slots.empty());
  EXPECT_LE(decision.slots.size(), 2u);

  // The dominant item's slot is what got peeled — sampled heat found it.
  const auto topo = client->Topology();
  const uint32_t hot_slot =
      uint32_t(TopologyView::SlotOf(hot, topo.num_slots));
  EXPECT_NE(std::find(decision.slots.begin(), decision.slots.end(), hot_slot),
            decision.slots.end())
      << "hottest slot not selected";

  // Slot-level, not shard-level: same shard count, ownership shifted.
  EXPECT_EQ(topo.num_shards, 2u);
  EXPECT_EQ(topo.slots_per_shard[0], 16 - decision.slots.size());
  EXPECT_EQ(topo.slots_per_shard[1], 16 + decision.slots.size());
  MetricsSnapshot snap = client->Metrics();
  EXPECT_EQ(snap.Value("engine.autoscaler.slot_moves_total"), 1u);
  EXPECT_EQ(snap.Value("engine.autoscaler.scaleouts_total"), 0u);

  // Keep ingesting through the rebalanced table; answers match a static
  // single-shard reference fed the same doubled stream.
  ASSERT_TRUE(SubmitAll(client.get(), skew).ok());
  ASSERT_TRUE(client->Finish().ok());
  auto reference =
      MakeClient(sketches, cfg, 1, 0, InProcessBackendFactory());
  ASSERT_TRUE(SubmitAll(reference.get(), skew).ok());
  ASSERT_TRUE(SubmitAll(reference.get(), skew).ok());
  ASSERT_TRUE(reference->Finish().ok());
  for (const std::string& name : sketches) {
    auto got = client->QueryScalar(client->Handle(name).value());
    auto want = reference->QueryScalar(reference->Handle(name).value());
    ASSERT_TRUE(got.ok() && want.ok()) << name;
    EXPECT_EQ(got.value().value, want.value().value) << name;
    EXPECT_EQ(got.value().updates, uint64_t(2 * skew.size())) << name;
  }
}

// ------------------------------------------------ controller vs dead shards --

// A dead shard must never become a migration destination: MoveSlots itself
// refuses (Unavailable, topology untouched), and the controller's
// destination picker routes around it to the healthiest candidate.
TEST(AutoscaleTest, DeadShardNeverPickedAsDestination) {
  const uint64_t universe = 1 << 12;
  SketchConfig cfg = TestConfig(universe, 101);

  // Loopback shards with heartbeat supervision and NO auto-recovery: the
  // crashed shard stays visibly dead for the whole scenario.
  ClientOptions opts;
  opts.ingest.num_shards = 3;
  opts.ingest.num_threads = 2;
  opts.ingest.sketches = {"ams_f2"};
  opts.ingest.config = cfg;
  opts.ingest.backend = LoopbackBackendFactory();
  opts.ingest.slot_sample_shift = 1;
  opts.ingest.failover.heartbeat_interval_ms = 10;
  opts.ingest.failover.heartbeat_timeout_ms = 50;
  opts.ingest.failover.dead_after_misses = 2;
  opts.ingest.failover.auto_recover = false;
  opts.ingest.autoscale.enabled = true;
  opts.ingest.autoscale.evaluation_interval_ms = 0;  // manual
  opts.ingest.autoscale.high_watermark_updates_per_sec = 0.0;
  opts.ingest.autoscale.scale_on_valve_pressure = false;
  opts.ingest.autoscale.imbalance_ratio = 1.5;
  opts.ingest.autoscale.cooldown_ms = 0;
  opts.ingest.autoscale.max_slots_per_move = 2;
  auto client_or = Client::Create(opts);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();

  // Shard 0 hot, shard 2 warm, shard 1 cold — shard 1 would be the
  // natural destination, so killing it makes the picker's health filter
  // load-bearing. The load never routes to shard 1, so ingest stays clean
  // while it is down.
  const uint64_t hot = ItemsForShard(0, 3, universe, 1)[0];
  auto shard0_extras = ItemsForShard(0, 3, universe, 5, hot + 1);
  auto shard2_items = ItemsForShard(2, 3, universe, 10);
  stream::TurnstileStream skew;
  for (size_t i = 0; i < 6000; ++i) skew.push_back({hot, 1});
  for (uint64_t item : shard0_extras) {
    for (size_t i = 0; i < 100; ++i) skew.push_back({item, 1});
  }
  for (uint64_t item : shard2_items) {
    for (size_t i = 0; i < 60; ++i) skew.push_back({item, 1});
  }

  EXPECT_EQ(client->autoscaler()->EvaluateOnce().kind,
            AutoscaleDecision::Kind::kNone);  // baselines
  ASSERT_TRUE(SubmitAll(client.get(), skew).ok());

  ASSERT_TRUE(client->InjectShardCrash(1).ok());
  ASSERT_TRUE(PollUntil([&] {
    return client->Health(1).health == ShardHealth::kDead;
  })) << "supervisor never declared the crashed shard dead";

  // Direct MoveSlots onto the dead shard: refused, topology untouched.
  auto initial = ShardTopology::MakeInitial(3, 16, nullptr);
  auto owned0 = initial->OwnedSlotIds(0);
  const uint64_t generation = client->Topology().generation;
  Status direct = client->MoveSlots(0, {owned0[0]}, 1);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.code(), Status::Code::kUnavailable) << direct.ToString();
  EXPECT_EQ(client->Topology().generation, generation);

  // The controller sees the same imbalance and peels the hot slots — onto
  // the healthy warm shard, never the dead cold one.
  AutoscaleDecision decision = client->autoscaler()->EvaluateOnce();
  ASSERT_EQ(decision.kind, AutoscaleDecision::Kind::kMoveSlots);
  ASSERT_TRUE(decision.status.ok()) << decision.status.ToString();
  EXPECT_EQ(decision.source, 0u);
  EXPECT_EQ(decision.dest, 2u) << "dead shard selected as destination";

  // Rescue the dead shard so teardown is a clean, loss-free engine.
  ASSERT_TRUE(client->RecoverShard(1, LoopbackBackendFactory()).ok());
  EXPECT_EQ(client->Health(1).health, ShardHealth::kHealthy);
  ASSERT_TRUE(client->Finish().ok());
}

}  // namespace
}  // namespace wbs::engine
