// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The TCP shard transport (src/engine/tcp_transport.h + TcpRemoteBackend):
//
//   * cross-backend equivalence — the self-hosted "tcp" backend must be
//     BIT-IDENTICAL to the in-process backend for all six sketch families
//     on Zipf / planted / churn / rank workloads, over real sockets;
//   * the kReqHello handshake — wrong magic, wrong protocol version, and
//     an unknown session token without a spec are rejected (the last as
//     NotFound, so a restarted daemon surfaces as a dead peer instead of
//     silently serving an empty shard);
//   * exactly-once applies — a replayed kReqApplySeq sequence answers from
//     the cached status without re-applying (epoch does not advance), and
//     the hello reply's last_applied_seq reports the resync cursor;
//   * transient partition — severed connections reconnect and resync with
//     zero answer divergence, zero accounted loss, and NO topology
//     generation bump (a partition is not a re-home);
//   * kill -9 of a standalone engine_shardd — heartbeat supervision (PR 7)
//     declares the shard dead via fast-failing refused probes, post-kill
//     batches are dropped with exact accounting, and RecoverShard re-homes
//     from the pre-kill checkpoint with updates_lost_total equal to
//     exactly the updates submitted after the kill. Gated on WBS_SHARDD
//     (CMake points it at the engine_shardd binary).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "engine/backend.h"
#include "engine/client.h"
#include "engine/remote_backend.h"
#include "engine/tcp_transport.h"
#include "engine/wire.h"
#include "stream/workload.h"

#include "engine_test_util.h"

namespace wbs::engine {
namespace {

SketchConfig TestConfig(uint64_t universe, uint64_t seed) {
  return SketchConfig{}.WithUniverse(universe).WithSeed(seed);
}

stream::TurnstileStream ZipfTurnstile(uint64_t universe, size_t n,
                                      uint64_t seed) {
  wbs::RandomTape tape(seed);
  tape.set_logging(false);
  auto items = stream::ZipfStream(universe, n, 1.2, &tape);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  return s;
}

// ------------------------------------------------- cross-backend equality --

/// Replays `s` through an in-process client and a self-hosted TCP client
/// (every shard behind a real localhost socket) and requires bit-identical
/// merged answers, per-shard live summaries, and space accounting.
void CheckTcpAgreesWithInProcess(const stream::TurnstileStream& s,
                                 const SketchConfig& cfg,
                                 const std::vector<std::string>& sketches,
                                 size_t shards, size_t threads) {
  auto inprocess =
      MakeClient(sketches, cfg, shards, threads, InProcessBackendFactory());
  auto tcp = MakeClient(sketches, cfg, shards, threads, TcpBackendFactory());
  ASSERT_EQ(tcp->ingestor().backend().name(), "tcp");
  EXPECT_TRUE(
      tcp->ingestor().backend().capabilities().crosses_process_boundary);
  // Self-hosted placements report a dialable failure-domain key.
  EXPECT_NE(tcp->ingestor().backend().Endpoint(0), "");

  // Env-injected replay ops disabled for the same reason as the loopback
  // equivalence harness: a crash drill is asymmetric between the two
  // backends by design, so it would make the replays diverge.
  ASSERT_TRUE(Replay(inprocess.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(Replay(tcp.get(), s, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(inprocess->Finish().ok());
  ASSERT_TRUE(tcp->Finish().ok());

  for (const std::string& name : sketches) {
    auto h_in = inprocess->Handle(name);
    auto h_tc = tcp->Handle(name);
    ASSERT_TRUE(h_in.ok() && h_tc.ok()) << name;
    auto want = inprocess->RawSummary(h_in.value());
    auto got = tcp->RawSummary(h_tc.value());
    ASSERT_TRUE(want.ok()) << name << ": " << want.status().ToString();
    ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
    EXPECT_EQ(got.value().scalar, want.value().scalar) << name;
    EXPECT_EQ(got.value().has_scalar, want.value().has_scalar) << name;
    EXPECT_EQ(got.value().updates, want.value().updates) << name;
    ASSERT_EQ(got.value().items.size(), want.value().items.size()) << name;
    for (size_t i = 0; i < got.value().items.size(); ++i) {
      EXPECT_EQ(got.value().items[i].item, want.value().items[i].item)
          << name;
      EXPECT_EQ(got.value().items[i].estimate, want.value().items[i].estimate)
          << name;
    }
    for (size_t shard = 0; shard < shards; ++shard) {
      auto shard_want = inprocess->ingestor().ShardSummary(shard, name);
      auto shard_got = tcp->ingestor().ShardSummary(shard, name);
      ASSERT_TRUE(shard_want.ok() && shard_got.ok()) << name << "@" << shard;
      EXPECT_EQ(shard_got.value().scalar, shard_want.value().scalar)
          << name << "@" << shard;
      EXPECT_EQ(shard_got.value().updates, shard_want.value().updates)
          << name << "@" << shard;
      ASSERT_EQ(shard_got.value().items.size(),
                shard_want.value().items.size())
          << name << "@" << shard;
      for (size_t i = 0; i < shard_got.value().items.size(); ++i) {
        EXPECT_EQ(shard_got.value().items[i].item,
                  shard_want.value().items[i].item);
        EXPECT_EQ(shard_got.value().items[i].estimate,
                  shard_want.value().items[i].estimate);
      }
    }
  }
  EXPECT_EQ(tcp->ingestor().SpaceBits(), inprocess->ingestor().SpaceBits());
}

TEST(TcpEquivalenceTest, ZipfAllFamilies) {
  const uint64_t universe = 1 << 12;
  CheckTcpAgreesWithInProcess(
      ZipfTurnstile(universe, 30000, 71), TestConfig(universe, 21),
      {"misra_gries", "ams_f2", "sis_l0", "robust_hh", "crhf_hh"}, 4, 2);
}

TEST(TcpEquivalenceTest, PlantedHeavyHitters) {
  const uint64_t universe = 1 << 16;
  wbs::RandomTape tape(72);
  tape.set_logging(false);
  std::vector<uint64_t> planted;
  auto items = stream::PlantedHeavyHitterStream(universe, 30000, 3, 0.2,
                                                &tape, &planted);
  stream::TurnstileStream s;
  s.reserve(items.size());
  for (const auto& u : items) s.push_back({u.item, 1});
  CheckTcpAgreesWithInProcess(s, TestConfig(universe, 22),
                              {"misra_gries", "robust_hh", "crhf_hh"}, 4, 2);
}

TEST(TcpEquivalenceTest, ChurnLinearFamilies) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(73);
  tape.set_logging(false);
  auto s = stream::InsertDeleteChurnStream(universe, 120, 2500, &tape);
  CheckTcpAgreesWithInProcess(s, TestConfig(universe, 23),
                              {"ams_f2", "sis_l0"}, 4, 2);
}

TEST(TcpEquivalenceTest, RankDecision) {
  SketchConfig cfg = TestConfig(1, 24);
  cfg.rank.n = 32;
  cfg.rank.k = 8;
  stream::TurnstileStream diag;
  for (size_t i = 0; i < 8; ++i) {
    diag.push_back({uint64_t(i) * cfg.rank.n + i, 1});
  }
  CheckTcpAgreesWithInProcess(diag, cfg, {"rank_decision"}, 2, 1);
}

// ----------------------------------------------------- handshake contract --

/// Builds a raw hello payload field by field (so tests can corrupt any of
/// them without EncodeHello's help).
std::string RawHello(uint32_t magic, uint8_t version, uint64_t token,
                     bool has_spec, const TcpShardSpec* spec = nullptr) {
  wire::Writer w;
  w.U32(magic);
  w.U8(version);
  w.U8(0);  // data channel
  w.U64(token);
  w.U64(0);  // shard id
  w.U64(0);  // last acked epoch
  w.U8(has_spec ? 1 : 0);
  if (has_spec) EncodeShardSpec(*spec, &w);
  return w.Take();
}

/// Dials `port`, sends one frame, and decodes the reply's leading Status.
Status OneShot(uint16_t port, uint8_t type, std::string_view payload) {
  auto fd = TcpConnectFd("127.0.0.1", port, /*timeout_ms=*/2000);
  if (!fd.ok()) return fd.status();
  Status s = wire::WriteFrameFd(fd.value(), type, payload);
  std::string buf;
  uint8_t resp_type = 0;
  std::string_view resp;
  if (s.ok()) {
    s = wire::ReadFrameFdTimeout(fd.value(), 5000, &buf, &resp_type, &resp);
  }
  Status decoded;
  if (s.ok()) {
    wire::Reader r(resp);
    s = wire::DecodeStatus(&r, &decoded);
  }
  close(fd.value());
  if (!s.ok()) return s;
  return decoded;
}

TcpShardSpec OneSketchSpec(uint64_t universe, uint64_t seed) {
  TcpShardSpec spec;
  spec.sketches = {"misra_gries"};
  spec.config = TestConfig(universe, seed);
  spec.snapshot_min_updates = 0;  // publish every batch: epoch counts applies
  return spec;
}

TEST(TcpHandshakeTest, WrongMagicRejected) {
  auto host = TcpShardHost::Start({});
  ASSERT_TRUE(host.ok()) << host.status().ToString();
  Status s = OneShot(host.value()->port(), wire::kReqHello,
                     RawHello(0xDEADBEEF, kTcpProtocolVersion, 1, false));
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.ToString().find("magic"), std::string::npos) << s.ToString();
  EXPECT_EQ(host.value()->sessions(), 0u);
}

TEST(TcpHandshakeTest, WrongProtocolVersionRejected) {
  auto host = TcpShardHost::Start({});
  ASSERT_TRUE(host.ok()) << host.status().ToString();
  Status s = OneShot(host.value()->port(), wire::kReqHello,
                     RawHello(kTcpMagic, kTcpProtocolVersion + 1, 1, false));
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.ToString().find("version"), std::string::npos) << s.ToString();
  EXPECT_EQ(host.value()->sessions(), 0u);
}

TEST(TcpHandshakeTest, UnknownTokenWithoutSpecIsNotFound) {
  auto host = TcpShardHost::Start({});
  ASSERT_TRUE(host.ok()) << host.status().ToString();
  Status s =
      OneShot(host.value()->port(), wire::kReqHello,
              RawHello(kTcpMagic, kTcpProtocolVersion, 0x5EED5EED, false));
  EXPECT_EQ(s.code(), Status::Code::kNotFound) << s.ToString();
  EXPECT_EQ(host.value()->sessions(), 0u);
}

TEST(TcpHandshakeTest, RequestBeforeHelloRejected) {
  auto host = TcpShardHost::Start({});
  ASSERT_TRUE(host.ok()) << host.status().ToString();
  Status s = OneShot(host.value()->port(), wire::kReqEpoch, "");
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition) << s.ToString();
}

TEST(TcpHandshakeTest, RestartedHostRejectsStaleSession) {
  auto first = TcpShardHost::Start({});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const uint16_t port = first.value()->port();
  const uint64_t token = 0xABCD1234;

  TcpShardSpec spec = OneSketchSpec(1 << 10, 31);
  Status s = OneShot(port, wire::kReqHello,
                     RawHello(kTcpMagic, kTcpProtocolVersion, token, true,
                              &spec));
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(first.value()->sessions(), 1u);

  // Simulate a daemon restart on the same endpoint: the session table is
  // gone. A reconnecting dialer never re-sends its spec, so it must get
  // NotFound (dead peer -> re-home), never a silently empty shard.
  first.value()->Stop();
  first.value().reset();
  auto second = TcpShardHost::Start({.bind_host = "127.0.0.1", .port = port});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  s = OneShot(port, wire::kReqHello,
              RawHello(kTcpMagic, kTcpProtocolVersion, token, false));
  EXPECT_EQ(s.code(), Status::Code::kNotFound) << s.ToString();
}

// ------------------------------------------------------ exactly-once applies

/// One established raw client connection: hello already exchanged.
struct RawConn {
  int fd = -1;
  TcpHelloReply hello;

  ~RawConn() {
    if (fd >= 0) close(fd);
  }
};

Status DialHello(uint16_t port, uint64_t token, bool has_spec,
                 const TcpShardSpec* spec, RawConn* out) {
  auto fd = TcpConnectFd("127.0.0.1", port, 2000);
  if (!fd.ok()) return fd.status();
  out->fd = fd.value();
  Status s = wire::WriteFrameFd(
      out->fd, wire::kReqHello,
      RawHello(kTcpMagic, kTcpProtocolVersion, token, has_spec, spec));
  std::string buf;
  uint8_t type = 0;
  std::string_view resp;
  if (s.ok()) s = wire::ReadFrameFdTimeout(out->fd, 5000, &buf, &type, &resp);
  if (!s.ok()) return s;
  wire::Reader r(resp);
  Status remote;
  if (Status ds = wire::DecodeStatus(&r, &remote); !ds.ok()) return ds;
  if (!remote.ok()) return remote;
  if (Status ds = r.U64(&out->hello.epoch); !ds.ok()) return ds;
  if (Status ds = r.U64(&out->hello.last_applied_seq); !ds.ok()) return ds;
  return r.ExpectEnd();
}

/// Sends one kReqApplySeq frame and returns the epoch in the OK reply.
Result<uint64_t> ApplySeq(int fd, uint64_t seq,
                          const stream::TurnstileStream& batch) {
  wire::Writer w;
  w.U64(seq);
  wire::EncodeUpdates(batch.data(), batch.size(), &w);
  Status s = wire::WriteFrameFd(fd, wire::kReqApplySeq, w.Take());
  std::string buf;
  uint8_t type = 0;
  std::string_view resp;
  if (s.ok()) s = wire::ReadFrameFdTimeout(fd, 5000, &buf, &type, &resp);
  if (!s.ok()) return s;
  wire::Reader r(resp);
  Status remote;
  if (Status ds = wire::DecodeStatus(&r, &remote); !ds.ok()) return ds;
  if (!remote.ok()) return remote;
  uint64_t epoch = 0;
  if (Status ds = r.U64(&epoch); !ds.ok()) return ds;
  return epoch;
}

TEST(TcpExactlyOnceTest, ReplayedSequenceIsNotReapplied) {
  auto host = TcpShardHost::Start({});
  ASSERT_TRUE(host.ok()) << host.status().ToString();
  const uint16_t port = host.value()->port();
  const uint64_t token = 0x10CA1;
  TcpShardSpec spec = OneSketchSpec(1 << 10, 33);

  RawConn conn;
  ASSERT_TRUE(DialHello(port, token, true, &spec, &conn).ok());
  EXPECT_EQ(conn.hello.epoch, 0u);
  EXPECT_EQ(conn.hello.last_applied_seq, 0u);

  // With snapshot_min_updates = 0 every applied batch publishes a snapshot,
  // so the epoch is an exact count of APPLIED batches.
  stream::TurnstileStream batch = {{5, 3}, {9, 1}};
  auto e1 = ApplySeq(conn.fd, 1, batch);
  ASSERT_TRUE(e1.ok()) << e1.status().ToString();
  EXPECT_EQ(e1.value(), 1u);

  // The replayed sequence is ACKed from the cached status without touching
  // the cell: the epoch must NOT advance (a re-apply would double-count).
  auto replay = ApplySeq(conn.fd, 1, batch);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay.value(), 1u);

  auto e2 = ApplySeq(conn.fd, 2, batch);
  ASSERT_TRUE(e2.ok()) << e2.status().ToString();
  EXPECT_EQ(e2.value(), 2u);

  // A reconnect (same token, NO spec) resyncs: the hello reply reports the
  // apply cursor so the dialer knows which in-flight batch already landed.
  RawConn re;
  ASSERT_TRUE(DialHello(port, token, false, nullptr, &re).ok());
  EXPECT_EQ(re.hello.last_applied_seq, 2u);
  EXPECT_EQ(re.hello.epoch, 2u);
  EXPECT_EQ(host.value()->sessions(), 1u);
}

// --------------------------------------------------- transient partitions --

std::unique_ptr<Client> MakeTcpClient(std::vector<std::string> sketches,
                                      const SketchConfig& cfg, size_t shards,
                                      size_t threads,
                                      const FailoverOptions& failover = {},
                                      BackendFactory backend = {}) {
  ClientOptions opts;
  opts.ingest.num_shards = shards;
  opts.ingest.num_threads = threads;
  opts.ingest.sketches = std::move(sketches);
  opts.ingest.config = cfg;
  opts.ingest.backend =
      backend ? std::move(backend) : TcpBackendFactory();
  opts.ingest.failover = failover;
  auto client = Client::Create(opts);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

TEST(TcpPartitionTest, TransientPartitionResyncsWithoutRehome) {
  const uint64_t universe = 1 << 12;
  const std::vector<std::string> sketches = {"misra_gries", "ams_f2",
                                             "sis_l0"};
  const SketchConfig cfg = TestConfig(universe, 25);
  const size_t shards = 2;
  auto s = ZipfTurnstile(universe, 20000, 75);
  const stream::TurnstileStream head(s.begin(), s.begin() + s.size() / 2);
  const stream::TurnstileStream tail(s.begin() + s.size() / 2, s.end());

  // Same batch boundaries as the partitioned client: Misra-Gries
  // pre-aggregates per batch, so boundaries are part of the answer.
  auto reference =
      MakeClient(sketches, cfg, shards, 2, InProcessBackendFactory());
  ASSERT_TRUE(
      Replay(reference.get(), head, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(
      Replay(reference.get(), tail, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());

  auto tcp = MakeTcpClient(sketches, cfg, shards, 2);
  ASSERT_TRUE(Replay(tcp.get(), head, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(tcp->Flush().ok());
  const uint64_t gen_before = tcp->Topology().generation;

  // Sever every shard's live connections. Sessions survive on the hosts,
  // so the dialers must reconnect + resync transparently inside the next
  // call's deadline — no supervision, no MoveShard, no loss.
  for (size_t shard = 0; shard < shards; ++shard) {
    ASSERT_TRUE(tcp->InjectShardPartition(shard).ok()) << shard;
  }
  ASSERT_TRUE(Replay(tcp.get(), tail, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(tcp->Finish().ok());

  // A transient partition is not a re-home: the routing table never moved.
  EXPECT_EQ(tcp->Topology().generation, gen_before);
  for (size_t shard = 0; shard < shards; ++shard) {
    ShardHealthInfo h = tcp->Health(shard);
    EXPECT_EQ(h.health, ShardHealth::kHealthy) << shard;
    EXPECT_EQ(h.dropped_updates, 0u) << shard;
    EXPECT_EQ(h.recoveries, 0u) << shard;
    EXPECT_EQ(h.updates_lost_total, 0u) << shard;
  }

  // Zero answer divergence from the uncontested in-process replay.
  for (const std::string& name : sketches) {
    auto want = reference->RawSummary(reference->Handle(name).value());
    auto got = tcp->RawSummary(tcp->Handle(name).value());
    ASSERT_TRUE(want.ok() && got.ok()) << name;
    EXPECT_EQ(got.value().scalar, want.value().scalar) << name;
    EXPECT_EQ(got.value().updates, want.value().updates) << name;
    ASSERT_EQ(got.value().items.size(), want.value().items.size()) << name;
    for (size_t i = 0; i < got.value().items.size(); ++i) {
      EXPECT_EQ(got.value().items[i].item, want.value().items[i].item);
      EXPECT_EQ(got.value().items[i].estimate, want.value().items[i].estimate);
    }
  }

  // Each shard's dialer redialed at least once, and says so.
  MetricsSnapshot snap = tcp->Metrics();
  for (size_t shard = 0; shard < shards; ++shard) {
    const std::string counter =
        "engine.shard." + std::to_string(shard) + ".tcp.reconnects_total";
    EXPECT_GE(snap.Value(counter), 1u) << counter;
  }
}

// ------------------------------------------------- kill -9 daemon recovery --

struct DaemonProc {
  pid_t pid = -1;
  uint16_t port = 0;
};

/// Spawns `binary --port=0` with stdout piped and blocks on the daemon's
/// "LISTENING <port>" line.
bool SpawnDaemon(const char* binary, DaemonProc* out) {
  int pfd[2];
  if (pipe(pfd) != 0) return false;
  pid_t pid = fork();
  if (pid < 0) {
    close(pfd[0]);
    close(pfd[1]);
    return false;
  }
  if (pid == 0) {
    dup2(pfd[1], STDOUT_FILENO);
    close(pfd[0]);
    close(pfd[1]);
    execl(binary, binary, "--port=0", static_cast<char*>(nullptr));
    _exit(127);
  }
  close(pfd[1]);
  std::string line;
  char c;
  while (read(pfd[0], &c, 1) == 1 && c != '\n') line.push_back(c);
  close(pfd[0]);
  unsigned port = 0;
  if (std::sscanf(line.c_str(), "LISTENING %u", &port) != 1 || port == 0 ||
      port > 65535) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    return false;
  }
  out->pid = pid;
  out->port = uint16_t(port);
  return true;
}

TEST(TcpDaemonTest, Kill9RecoversFromCheckpointWithExactLoss) {
  const char* shardd = std::getenv("WBS_SHARDD");
  if (shardd == nullptr) {
    GTEST_SKIP() << "WBS_SHARDD not set (ctest sets it to engine_shardd)";
  }
  DaemonProc daemon;
  ASSERT_TRUE(SpawnDaemon(shardd, &daemon)) << "engine_shardd did not start";

  const uint64_t universe = 1 << 10;
  const std::vector<std::string> sketches = {"misra_gries", "ams_f2"};
  const SketchConfig cfg = TestConfig(universe, 29);
  auto s = ZipfTurnstile(universe, 6000, 79);
  const stream::TurnstileStream prefix(s.begin(), s.begin() + 4096);
  const stream::TurnstileStream post(s.begin() + 4096, s.end());

  // The reference saw ONLY the checkpointed prefix: recovery must restore
  // exactly that state, nothing more, nothing less.
  auto reference =
      MakeClient(sketches, cfg, /*shards=*/1, /*threads=*/1,
                 InProcessBackendFactory());
  ASSERT_TRUE(Replay(reference.get(), prefix, 1024,
                     ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(reference->Finish().ok());

  auto factory = BackendFactoryByName(
      "tcp:127.0.0.1:" + std::to_string(daemon.port));
  ASSERT_TRUE(factory.ok()) << factory.status().ToString();
  // Heartbeat supervision on, auto-recovery OFF: the kill is detected by
  // the supervisor, but the re-home happens at a barrier WE choose, so the
  // post-kill drop count is deterministic. The timeout is generous because
  // dead-daemon detection does not depend on it — probes against a killed
  // listener fast-fail with ECONNREFUSED — while a tight timeout could
  // declare a merely-slow daemon dead on sanitizer builds.
  FailoverOptions failover;
  failover.heartbeat_interval_ms = 25;
  failover.heartbeat_timeout_ms = 2000;
  failover.auto_recover = false;
  auto tcp = MakeTcpClient(sketches, cfg, /*shards=*/1, /*threads=*/1,
                           failover, std::move(factory).value());
  ASSERT_TRUE(Replay(tcp.get(), prefix, 1024, ReplayChurn::kDisabled).ok());
  ASSERT_TRUE(tcp->Flush().ok());
  ASSERT_TRUE(tcp->Checkpoint().ok());
  const uint64_t gen_before = tcp->Topology().generation;
  // The exact-loss assertions below are meaningless if the shard degraded
  // during the prefix (only possible if supervision misfired on a healthy
  // daemon) — catch that case here, where the diagnosis is unambiguous.
  ASSERT_EQ(tcp->Health(0).health, ShardHealth::kHealthy);
  ASSERT_EQ(tcp->Health(0).dropped_updates, 0u);

  ASSERT_EQ(kill(daemon.pid, SIGKILL), 0);
  ASSERT_EQ(waitpid(daemon.pid, nullptr, 0), daemon.pid);

  // Refused probes fast-fail (the listener died with the process), so the
  // supervisor converges on kDead in a few heartbeat periods.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (tcp->Health(0).health != ShardHealth::kDead &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(tcp->Health(0).health, ShardHealth::kDead);

  // Everything submitted after the kill is dropped — with a receipt.
  auto ticket = tcp->Submit(post);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  ASSERT_TRUE(tcp->Wait(ticket.value()).ok());
  EXPECT_EQ(tcp->Health(0).dropped_updates, post.size());

  // Re-home from the pre-kill checkpoint (default in-process placement).
  ASSERT_TRUE(tcp->RecoverShard(0).ok());
  ShardHealthInfo h = tcp->Health(0);
  EXPECT_EQ(h.health, ShardHealth::kHealthy);
  EXPECT_EQ(h.recoveries, 1u);
  // EXACT loss accounting: the checkpoint was cut after the full prefix
  // was acked and nothing else was acked before the kill, so the loss is
  // precisely the post-kill submissions.
  EXPECT_EQ(h.updates_lost_total, post.size());
  EXPECT_GT(tcp->Topology().generation, gen_before);

  ASSERT_TRUE(tcp->Finish().ok());
  for (const std::string& name : sketches) {
    auto want = reference->RawSummary(reference->Handle(name).value());
    auto got = tcp->RawSummary(tcp->Handle(name).value());
    ASSERT_TRUE(want.ok() && got.ok()) << name;
    EXPECT_EQ(got.value().scalar, want.value().scalar) << name;
    EXPECT_EQ(got.value().has_scalar, want.value().has_scalar) << name;
    EXPECT_EQ(got.value().updates, want.value().updates) << name;
    ASSERT_EQ(got.value().items.size(), want.value().items.size()) << name;
    for (size_t i = 0; i < got.value().items.size(); ++i) {
      EXPECT_EQ(got.value().items[i].item, want.value().items[i].item);
      EXPECT_EQ(got.value().items[i].estimate, want.value().items[i].estimate);
    }
  }
}

}  // namespace
}  // namespace wbs::engine
