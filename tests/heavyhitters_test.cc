// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Heavy hitters: Misra-Gries / SpaceSaving invariants, BernMG (Algorithm 1),
// the robust Algorithm 2 (Theorem 1.1), the CRHF variant (Theorem 1.2), and
// inner-product estimation (Corollary 2.8).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/random.h"
#include "heavyhitters/crhf_hh.h"
#include "heavyhitters/inner_product.h"
#include "heavyhitters/misra_gries.h"
#include "heavyhitters/robust_hh.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

namespace wbs::hh {
namespace {

// ------------------------------------------------------------ MisraGries --

TEST(MisraGriesTest, SmallStreamExact) {
  MisraGries mg(4);
  for (uint64_t v : {1u, 2u, 1u, 3u, 1u}) mg.Add(v);
  EXPECT_EQ(mg.Estimate(1), 3u);
  EXPECT_EQ(mg.Estimate(2), 1u);
  EXPECT_EQ(mg.Estimate(4), 0u);
}

TEST(MisraGriesTest, UnderestimatesNeverOverestimate) {
  wbs::RandomTape tape(1);
  auto s = stream::ZipfStream(1000, 5000, 1.1, &tape);
  stream::FrequencyOracle truth(1000);
  truth.AddStream(s);
  MisraGries mg(16);
  for (const auto& u : s) mg.Add(u.item);
  for (const auto& [item, f] : truth.frequencies()) {
    EXPECT_LE(mg.Estimate(item), uint64_t(f)) << item;
  }
}

// The defining Theorem 2.2 invariant across workloads and capacities.
class MgErrorBoundTest
    : public ::testing::TestWithParam<std::pair<size_t, uint64_t>> {};

TEST_P(MgErrorBoundTest, AdditiveErrorAtMostMOverK1) {
  auto [k, m] = GetParam();
  wbs::RandomTape tape(k * 31 + m);
  auto s = stream::ZipfStream(1 << 14, m, 1.05, &tape);
  stream::FrequencyOracle truth(1 << 14);
  truth.AddStream(s);
  MisraGries mg(k);
  for (const auto& u : s) mg.Add(u.item);
  const double bound = double(m) / double(k + 1);
  EXPECT_LE(mg.ErrorBound(), bound + 1e-9);
  for (const auto& [item, f] : truth.frequencies()) {
    EXPECT_GE(double(mg.Estimate(item)), double(f) - bound - 1e-9) << item;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MgErrorBoundTest,
    ::testing::Values(std::pair<size_t, uint64_t>{4, 2000},
                      std::pair<size_t, uint64_t>{8, 2000},
                      std::pair<size_t, uint64_t>{16, 10000},
                      std::pair<size_t, uint64_t>{64, 10000},
                      std::pair<size_t, uint64_t>{128, 50000}));

TEST(MisraGriesTest, TracksAtMostK) {
  MisraGries mg(8);
  wbs::RandomTape tape(2);
  for (int i = 0; i < 1000; ++i) mg.Add(tape.UniformInt(1u << 20));
  EXPECT_LE(mg.tracked(), 8u);
  EXPECT_LE(mg.List().size(), 8u);
}

TEST(MisraGriesTest, WeightedUpdates) {
  MisraGries mg(4);
  mg.Add(7, 100);
  mg.Add(8, 1);
  EXPECT_EQ(mg.Estimate(7), 100u);
  EXPECT_EQ(mg.processed(), 101u);
}

TEST(MisraGriesTest, WeightedEvictionKeepsInvariant) {
  MisraGries mg(2);
  mg.Add(1, 10);
  mg.Add(2, 10);
  mg.Add(3, 5);  // eviction round(s)
  EXPECT_GE(double(mg.Estimate(1)), 10.0 - mg.ErrorBound() - 1e-9);
  EXPECT_GE(double(mg.Estimate(2)), 10.0 - mg.ErrorBound() - 1e-9);
}

TEST(MisraGriesTest, SpaceBitsScalesWithUniverseAndCounts) {
  MisraGries mg(4);
  mg.Add(3, 1000);
  uint64_t small_universe = mg.SpaceBits(16);
  uint64_t big_universe = mg.SpaceBits(uint64_t{1} << 40);
  EXPECT_LT(small_universe, big_universe);
  EXPECT_EQ(big_universe, 40 + wbs::BitsForValue(1000));
}

TEST(MisraGriesTest, WorstCaseSpaceBitsFormula) {
  EXPECT_EQ(MisraGries::WorstCaseSpaceBits(10, uint64_t{1} << 20,
                                           uint64_t{1} << 30),
            10u * (20 + 31));
}

// ----------------------------------------------------------- SpaceSaving --

TEST(SpaceSavingTest, OverestimatesNeverUnderestimate) {
  wbs::RandomTape tape(3);
  auto s = stream::ZipfStream(500, 3000, 1.1, &tape);
  stream::FrequencyOracle truth(500);
  truth.AddStream(s);
  SpaceSaving ss(16);
  for (const auto& u : s) ss.Add(u.item);
  for (const auto& [item, f] : truth.frequencies()) {
    EXPECT_GE(ss.Estimate(item), uint64_t(f)) << item;
  }
}

TEST(SpaceSavingTest, ErrorAtMostMOverK) {
  wbs::RandomTape tape(4);
  auto s = stream::UniformStream(100, 4000, &tape);
  SpaceSaving ss(40);
  for (const auto& u : s) ss.Add(u.item);
  EXPECT_LE(ss.MaxError(), 4000u / 40u + 1);
}

TEST(SpaceSavingTest, HeavyItemAlwaysTracked) {
  wbs::RandomTape tape(5);
  std::vector<uint64_t> planted;
  auto s = stream::PlantedHeavyHitterStream(1 << 16, 5000, 2, 0.2, &tape,
                                            &planted);
  SpaceSaving ss(10);
  for (const auto& u : s) ss.Add(u.item);
  auto list = ss.List();
  for (uint64_t id : planted) {
    bool found = false;
    for (const auto& wi : list) found |= wi.item == id;
    EXPECT_TRUE(found) << id;
  }
}

// ---------------------------------------------------------------- BernMG --

TEST(BernMGTest, RecoversPlantedHeavyHitters) {
  const uint64_t m = 50000;
  const double eps = 0.1;
  int recall_failures = 0;
  for (int trial = 0; trial < 5; ++trial) {
    wbs::RandomTape tape(600 + trial);
    std::vector<uint64_t> planted;
    auto s = stream::PlantedHeavyHitterStream(1 << 20, m, 3, 2 * eps, &tape,
                                              &planted);
    BernMG alg(1 << 20, m, eps, 0.05, &tape);
    for (const auto& u : s) alg.Add(u.item);
    std::set<uint64_t> listed;
    for (const auto& wi : alg.List()) listed.insert(wi.item);
    for (uint64_t id : planted) {
      if (!listed.count(id)) ++recall_failures;
    }
  }
  EXPECT_LE(recall_failures, 1);
}

TEST(BernMGTest, EstimatesScaleBySamplingRate) {
  const uint64_t m = 20000;
  wbs::RandomTape tape(7);
  BernMG alg(1 << 16, m, 0.1, 0.05, &tape);
  for (uint64_t i = 0; i < m; ++i) alg.Add(42);
  EXPECT_NEAR(alg.Estimate(42), double(m), 0.25 * double(m));
}

TEST(BernMGTest, SpaceIndependentOfStreamLength) {
  // The whole point: counters hold SAMPLED counts, so space depends on the
  // sample size ~ log(n)/eps^2, not on m.
  const double eps = 0.25;
  uint64_t space_small = 0, space_large = 0;
  {
    wbs::RandomTape tape(8);
    const uint64_t m = 1 << 12;
    BernMG alg(1 << 16, m, eps, 0.1, &tape);
    for (uint64_t i = 0; i < m; ++i) alg.Add(i % 7);
    space_small = alg.SpaceBits();
  }
  {
    wbs::RandomTape tape(9);
    const uint64_t m = 1 << 20;
    BernMG alg(1 << 16, m, eps, 0.1, &tape);
    for (uint64_t i = 0; i < m; ++i) alg.Add(i % 7);
    space_large = alg.SpaceBits();
  }
  EXPECT_LE(space_large, space_small * 3);
}

// ------------------------------------------------- RobustL1HeavyHitters --

TEST(RobustHhTest, RecoversPlantedHeavyHittersAcrossScales) {
  const double eps = 0.1;
  for (uint64_t m : {2000u, 20000u, 200000u}) {
    int misses = 0;
    for (int trial = 0; trial < 3; ++trial) {
      wbs::RandomTape tape(m + uint64_t(trial));
      std::vector<uint64_t> planted;
      auto s = stream::PlantedHeavyHitterStream(1 << 20, m, 3, 2 * eps, &tape,
                                                &planted);
      RobustL1HeavyHitters alg(1 << 20, eps, 0.25, &tape);
      for (const auto& u : s) ASSERT_TRUE(alg.Update({u.item}).ok());
      std::set<uint64_t> listed;
      for (const auto& wi : alg.Query()) listed.insert(wi.item);
      for (uint64_t id : planted) misses += listed.count(id) ? 0 : 1;
    }
    EXPECT_LE(misses, 2) << "m=" << m;
  }
}

TEST(RobustHhTest, GuessExponentTracksLogOfLength) {
  wbs::RandomTape tape(11);
  const double eps = 0.25;  // base 16/eps = 64
  RobustL1HeavyHitters alg(1 << 16, eps, 0.25, &tape);
  for (int i = 0; i < 100000; ++i) ASSERT_TRUE(alg.Update({1}).ok());
  EXPECT_GE(alg.active_guess_exponent(), 2);
  EXPECT_LE(alg.active_guess_exponent(), 4);
}

TEST(RobustHhTest, RejectsOutOfUniverse) {
  wbs::RandomTape tape(12);
  RobustL1HeavyHitters alg(100, 0.2, 0.25, &tape);
  EXPECT_FALSE(alg.Update({100}).ok());
}

TEST(RobustHhTest, SpaceFlatInMWhileMisraGriesGrows) {
  // Theorem 1.1 vs Theorem 2.2: Algorithm 2's space has no log m term —
  // its counters hold SAMPLED counts whose magnitude is m-independent,
  // while Misra-Gries counters grow with m. We verify the slopes: on a
  // concentrated stream, MG's counter widths grow by ~log(m2/m1) bits while
  // the robust algorithm's space stays within a constant.
  const double eps = 0.125;
  auto run_robust = [&](uint64_t m, uint64_t seed) {
    wbs::RandomTape tape(seed);
    RobustL1HeavyHitters alg(1 << 20, eps, 0.25, &tape);
    for (uint64_t i = 0; i < m; ++i) {
      EXPECT_TRUE(alg.Update({i % 7}).ok());  // concentrated: counters grow
    }
    return alg.SpaceBits();
  };
  auto run_mg = [&](uint64_t m) {
    MisraGries mg(size_t(std::ceil(2.0 / eps)));
    for (uint64_t i = 0; i < m; ++i) mg.Add(i % 7);
    return mg.SpaceBits(1 << 20);
  };
  const uint64_t m1 = 1 << 13, m2 = 1 << 21;  // 256x longer stream
  uint64_t robust_growth = 0;
  uint64_t r1 = run_robust(m1, 13), r2 = run_robust(m2, 13);
  robust_growth = r2 > r1 ? r2 - r1 : 0;
  uint64_t mg_growth = run_mg(m2) - run_mg(m1);
  // MG: 7 counters each gain ~8 bits -> ~56; robust: bounded sample sizes.
  EXPECT_GE(mg_growth, 40u);
  EXPECT_LE(robust_growth, mg_growth / 2);
  // And Theorem 2.2's *worst case* formula at production-scale m loses to
  // the robust algorithm's measured (m-independent) footprint:
  uint64_t mg_worst_2_60 = MisraGries::WorstCaseSpaceBits(
      size_t(std::ceil(2.0 / eps)), 1 << 20, uint64_t{1} << 60);
  EXPECT_LT(r2, mg_worst_2_60 * 2);  // within 2x already at 16 counters
}

TEST(RobustHhTest, ListSizeBounded) {
  wbs::RandomTape tape(14);
  const double eps = 0.1;
  RobustL1HeavyHitters alg(1 << 20, eps, 0.25, &tape);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(alg.Update({uint64_t(i) % 5000}).ok());
  }
  EXPECT_LE(alg.Query().size(), size_t(std::ceil(4.0 / eps)));
}

TEST(RobustHhTest, SerializedStateIsDeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    wbs::RandomTape tape(seed);
    RobustL1HeavyHitters alg(1 << 12, 0.2, 0.25, &tape);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_TRUE(alg.Update({uint64_t(i * i) % 4096}).ok());
    }
    core::StateWriter w;
    alg.SerializeState(&w);
    return w.words();
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

TEST(RobustHhTest, EstimateAdditiveError) {
  const double eps = 0.1;
  wbs::RandomTape tape(15);
  RobustL1HeavyHitters alg(1 << 16, eps, 0.25, &tape);
  stream::FrequencyOracle truth(1 << 16);
  const uint64_t m = 40000;
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t item = (i % 3 == 0) ? 7 : (i % 1000);
    truth.Add(item);
    ASSERT_TRUE(alg.Update({item}).ok());
  }
  double est = alg.Estimate(7);
  EXPECT_NEAR(est, double(truth.Frequency(7)), 3 * eps * double(m));
}

// A simple adaptive white-box adversary: feeds the item the CURRENT summary
// estimates lowest among a fixed candidate set, trying to exploit the
// exposed counters; the planted heavy item must still be reported.
class LowEstimateAdversary final
    : public core::Adversary<stream::ItemUpdate, HhList> {
 public:
  LowEstimateAdversary(const RobustL1HeavyHitters* victim, uint64_t rounds)
      : victim_(victim), rounds_(rounds) {}

  std::optional<stream::ItemUpdate> NextUpdate(const core::StateView& view,
                                               const HhList&) override {
    if (view.round >= rounds_) return std::nullopt;
    if (view.round % 3 == 0) return stream::ItemUpdate{kHeavy};
    uint64_t best = 1;
    double best_est = 1e300;
    for (uint64_t c = 1; c <= 20; ++c) {
      double e = victim_->Estimate(c);
      if (e < best_est) {
        best_est = e;
        best = c;
      }
    }
    return stream::ItemUpdate{best};
  }

  static constexpr uint64_t kHeavy = 999;

 private:
  const RobustL1HeavyHitters* victim_;
  uint64_t rounds_;
};

TEST(RobustHhTest, SurvivesAdaptiveLowEstimateAdversary) {
  int survived = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    wbs::RandomTape tape(1600 + t);
    RobustL1HeavyHitters alg(1 << 10, 0.2, 0.25, &tape);
    LowEstimateAdversary adv(&alg, 30000);
    stream::FrequencyOracle truth(1 << 10);
    auto result = core::RunGame<stream::ItemUpdate, HhList>(
        &alg, &adv, 30000,
        [&](const stream::ItemUpdate& u) { truth.Add(u.item); },
        [&](uint64_t round, const HhList& answer) {
          if (round < 5000) return true;  // let sampling warm up
          for (const auto& wi : answer) {
            if (wi.item == LowEstimateAdversary::kHeavy) return true;
          }
          return false;
        });
    survived += result.algorithm_survived ? 1 : 0;
  }
  EXPECT_GE(survived, 4);
}

// ------------------------------------------------------ CrhfHeavyHitters --

TEST(CrhfHhTest, ReportsPhiHeavyOmitsLight) {
  const double phi = 0.2, eps = 0.1;
  int bad = 0;
  for (int trial = 0; trial < 5; ++trial) {
    wbs::RandomTape tape(1700 + trial);
    CrhfHeavyHitters alg(uint64_t{1} << 40, phi, eps, /*T=*/1 << 20, &tape);
    const uint64_t m = 40000;
    for (uint64_t i = 0; i < m; ++i) {
      uint64_t item;
      if (i % 10 < 3) {
        item = 111111;  // 30%: phi-heavy, must be reported
      } else if (i % 50 == 7) {
        item = 222222;  // 2%: below phi - eps, must not be reported
      } else {
        item = 1000000 + (i * 2654435761ULL) % 1000000;
      }
      ASSERT_TRUE(alg.Update({item}).ok());
    }
    bool heavy_reported = false, light_reported = false;
    for (const auto& wi : alg.Query()) {
      heavy_reported |= wi.item == 111111;
      light_reported |= wi.item == 222222;
    }
    if (!heavy_reported || light_reported) ++bad;
  }
  EXPECT_LE(bad, 1);
}

TEST(CrhfHhTest, HashBitsBoundedByBudgetNotUniverse) {
  wbs::RandomTape tape(18);
  CrhfHeavyHitters alg(uint64_t{1} << 56, 0.2, 0.1, /*T=*/1 << 10, &tape);
  EXPECT_LT(alg.hash_bits(), 56);
  EXPECT_GE(alg.hash_bits(), 8);
}

TEST(CrhfHhTest, HashBitsClampToUniverseWhenSmall) {
  wbs::RandomTape tape(19);
  CrhfHeavyHitters alg(1 << 10, 0.2, 0.1, /*T=*/uint64_t{1} << 20, &tape);
  EXPECT_LE(alg.hash_bits(), 10);
}

TEST(CrhfHhTest, SpaceSmallerThanPlainRobustHhOnHugeUniverse) {
  // Theorem 1.2's saving: the O(1/eps) counter keys cost ~2 log T bits
  // instead of log n; only the O(1/phi) reportable identities pay log n.
  // The saving dominates when 1/eps >> 1/phi and log T << log n.
  const double eps = 0.05, phi = 0.3;
  const uint64_t universe = uint64_t{1} << 56;
  wbs::RandomTape tape1(20), tape2(21);
  CrhfHeavyHitters crhf_alg(universe, phi, eps, /*T=*/1 << 5, &tape1);
  RobustL1HeavyHitters plain_alg(universe, eps, 0.25, &tape2);
  const uint64_t m = 60000;
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t item = (i * 0x9e3779b97f4a7c15ULL) % universe;
    ASSERT_TRUE(crhf_alg.Update({item}).ok());
    ASSERT_TRUE(plain_alg.Update({item}).ok());
  }
  EXPECT_LT(crhf_alg.SpaceBits(), plain_alg.SpaceBits());
}

// ---------------------------------------------- InnerProductEstimator --

class InnerProductTest : public ::testing::TestWithParam<double> {};

TEST_P(InnerProductTest, ErrorWithinEpsL1L1) {
  const double eps = GetParam();
  int failures = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    wbs::RandomTape tape(1800 + t);
    const uint64_t m = 20000;
    InnerProductEstimator est(1 << 12, m, m, eps, &tape);
    stream::FrequencyOracle f(1 << 12), g(1 << 12);
    for (uint64_t i = 0; i < m; ++i) {
      uint64_t a = tape.UniformInt(64);
      uint64_t b = tape.UniformInt(64);
      est.AddF(a);
      est.AddG(b);
      f.Add(a);
      g.Add(b);
    }
    double bound = 12 * eps * double(f.L1()) * double(g.L1());
    if (std::abs(est.Estimate() - double(f.InnerProduct(g))) > bound) {
      ++failures;
    }
  }
  EXPECT_LE(failures, 2) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, InnerProductTest,
                         ::testing::Values(0.05, 0.1, 0.2));

TEST(InnerProductDisjointTest, DisjointSupportsGiveNearZero) {
  wbs::RandomTape tape(22);
  const uint64_t m = 10000;
  InnerProductEstimator est(1 << 12, m, m, 0.1, &tape);
  stream::FrequencyOracle f(1 << 12), g(1 << 12);
  for (uint64_t i = 0; i < m; ++i) {
    est.AddF(i % 100);
    est.AddG(2000 + (i % 100));
    f.Add(i % 100);
    g.Add(2000 + i % 100);
  }
  EXPECT_EQ(f.InnerProduct(g), 0);
  EXPECT_LE(std::abs(est.Estimate()),
            12 * 0.1 * double(f.L1()) * double(g.L1()));
}

}  // namespace
}  // namespace wbs::hh
