// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Communication problems (Definitions 2.20, 3.1) and the Theorem 1.8
// reduction engine, executed exactly at small n.

#include <gtest/gtest.h>

#include <cmath>

#include "commlb/problems.h"
#include "commlb/reduction.h"
#include "common/bits.h"
#include "common/random.h"

namespace wbs::commlb {
namespace {

TEST(ProblemsTest, HamAndWeight) {
  BitString a = {1, 0, 1, 1};
  BitString b = {1, 1, 0, 1};
  EXPECT_EQ(Ham(a, b), 2u);
  EXPECT_EQ(Weight(a), 3u);
}

TEST(ProblemsTest, RandomBalancedIsBalanced) {
  wbs::RandomTape tape(1);
  for (size_t n : {10UL, 16UL, 40UL}) {
    BitString s = RandomBalanced(n, &tape);
    EXPECT_EQ(s.size(), n);
    EXPECT_EQ(Weight(s), n / 2);
  }
}

TEST(ProblemsTest, GapEqEqualInstances) {
  wbs::RandomTape tape(2);
  GapEqInstance inst = MakeGapEqInstance(20, true, &tape);
  EXPECT_EQ(inst.x, inst.y);
  EXPECT_TRUE(inst.equal);
  EXPECT_EQ(Weight(inst.x), 10u);
}

TEST(ProblemsTest, GapEqUnequalInstancesRespectGap) {
  wbs::RandomTape tape(3);
  for (int t = 0; t < 20; ++t) {
    GapEqInstance inst = MakeGapEqInstance(20, false, &tape);
    EXPECT_GE(Ham(inst.x, inst.y) * 10, 20u);  // HAM >= n/10
    EXPECT_EQ(Weight(inst.y), 10u);            // balance preserved
  }
}

TEST(ProblemsTest, AllBalancedStringsCount) {
  // C(n, n/2) balanced strings.
  EXPECT_EQ(AllBalancedStrings(4).size(), 6u);
  EXPECT_EQ(AllBalancedStrings(6).size(), 20u);
  EXPECT_EQ(AllBalancedStrings(10).size(), 252u);
}

TEST(ProblemsTest, AllBalancedStringsAreDistinctAndBalanced) {
  auto all = AllBalancedStrings(8);
  EXPECT_EQ(all.size(), 70u);
  std::set<BitString> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), all.size());
  for (const auto& s : all) EXPECT_EQ(Weight(s), 4u);
}

TEST(ProblemsTest, OrEqInstanceShape) {
  wbs::RandomTape tape(4);
  OrEqInstance inst = MakeOrEqInstance(16, 5, 2, &tape);
  ASSERT_EQ(inst.x.size(), 5u);
  ASSERT_EQ(inst.y.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    if (int(i) == 2) {
      EXPECT_EQ(inst.x[i], inst.y[i]);
    } else {
      EXPECT_NE(inst.x[i], inst.y[i]);
    }
  }
}

// ------------------------------------------------ the Theorem 1.8 engine --

// A toy streaming "algorithm" for GapEquality via F2 of the concatenated
// stream: Alice streams x (as increments to coordinates i with x_i = 1),
// Bob streams y; F2(x + y) = n iff x = y (each matched coordinate
// contributes 4, each unmatched 1; with |x| = |y| = n/2: equal -> 4 * n/2 =
// 2n, unequal with HAM >= n/10 -> strictly less). A seed-indexed linear
// sketch of r rows reproduces the white-box setting.
struct ToySketch {
  uint64_t seed = 0;
  size_t rows = 0;
  size_t n = 0;
  std::vector<int64_t> counters;

  static int Sign(uint64_t seed, size_t row, size_t i) {
    uint64_t s = seed ^ (row * 0xd1342543de82ef95ULL) ^
                 (i * 0x9e3779b97f4a7c15ULL);
    return (wbs::SplitMix64(&s) & 1) ? 1 : -1;
  }

  void Feed(const BitString& bits) {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (!bits[i]) continue;
      for (size_t r = 0; r < rows; ++r) {
        counters[r] += Sign(seed, r, i);
      }
    }
  }

  double F2Estimate() const {
    double s = 0;
    for (int64_t c : counters) s += double(c) * double(c);
    return s / double(rows);
  }
};

ToySketch MakeSketch(uint64_t seed, size_t rows, size_t n) {
  ToySketch t;
  t.seed = seed;
  t.rows = rows;
  t.n = n;
  t.counters.assign(rows, 0);
  return t;
}

TEST(ReductionTest, DerandomizationFindsGoodSeedAtSmallN) {
  // Exactly the Theorem 1.8 constructive step: enumerate seeds, demand
  // correctness on EVERY Bob input under the gap promise.
  const size_t n = 8;
  const size_t rows = 24;
  wbs::RandomTape tape(5);
  BitString x = RandomBalanced(n, &tape);
  // Bob inputs: x itself (equal case) + all balanced strings at the toy
  // half-gap HAM >= n/2 (Def 3.1's n/10 gap is one count at n = 8).
  std::vector<BitString> ys = {x};
  for (const auto& y : AllBalancedStrings(n)) {
    if (Ham(x, y) * 2 >= n && !(y == x)) ys.push_back(y);
  }
  auto outcome = DerandomizeOneWay<ToySketch, double>(
      x, ys,
      [&](uint64_t seed) { return MakeSketch(seed, rows, n); },
      [](ToySketch* alg, const BitString& ax) { alg->Feed(ax); },
      [](ToySketch* alg, const BitString& by) { alg->Feed(by); },
      [](const ToySketch& alg) { return alg.F2Estimate(); },
      [&](const double& est, const BitString& ax, const BitString& by) {
        // Half-gap decision: equal -> F2 = 2n, unequal -> F2 <= 1.5n.
        bool says_equal = est > 1.75 * double(n);
        return says_equal == (ax == by);
      },
      [](const ToySketch& alg) {
        uint64_t bits = 64;  // seed
        for (int64_t c : alg.counters) {
          bits += wbs::BitsForValue(uint64_t(c < 0 ? -c : c)) + 1;
        }
        return bits;
      },
      /*max_seeds=*/64);
  EXPECT_TRUE(outcome.found);
  EXPECT_GT(outcome.per_seed_success, 0.8);
  // Communication = shipped state, far below storing x but nonzero.
  EXPECT_GT(outcome.communication_bits, 0u);
}

TEST(ReductionTest, CountDistinctStatesLowerBoundsCommunication) {
  // For a protocol that decides Equality for ALL y, Alice's states must
  // distinguish all inputs: with the exact (store-everything) algorithm the
  // state count equals the input count, certifying log2(#inputs) bits.
  const size_t n = 8;
  auto xs = AllBalancedStrings(n);
  struct ExactAlg {
    BitString stored;
  };
  uint64_t states = CountDistinctStates<ExactAlg>(
      xs, /*seed=*/0,
      [](uint64_t) { return ExactAlg{}; },
      [](ExactAlg* a, const BitString& x) { a->stored = x; },
      [](const ExactAlg& a) {
        std::vector<uint64_t> w;
        for (uint8_t b : a.stored) w.push_back(b);
        return w;
      });
  EXPECT_EQ(states, xs.size());
  EXPECT_GE(wbs::BitsForValue(states - 1), 6u);  // >= log2 C(8,4) = ~6.1
}

TEST(ReductionTest, SmallSketchCannotDistinguishAllInputs) {
  // The converse observation: an o(n)-bit state takes fewer distinct values
  // than there are inputs, so SOME pair of inputs shares a state — the seed
  // of the impossibility (combined with the gap instance, Theorem 1.9).
  const size_t n = 12;
  auto xs = AllBalancedStrings(n);  // C(12,6) = 924 inputs
  const size_t rows = 2;            // tiny sketch: ~2 small counters
  uint64_t states = CountDistinctStates<ToySketch>(
      xs, /*seed=*/7,
      [&](uint64_t seed) { return MakeSketch(seed, rows, n); },
      [](ToySketch* a, const BitString& x) { a->Feed(x); },
      [](const ToySketch& a) {
        std::vector<uint64_t> w;
        for (int64_t c : a.counters) w.push_back(uint64_t(c));
        return w;
      });
  EXPECT_LT(states, xs.size());  // pigeonhole: collisions must exist
}

}  // namespace
}  // namespace wbs::commlb
