// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Integration tests: full white-box adversarial games wiring the model core
// (Section 1's three-step game) to concrete algorithms and adversaries from
// several modules — the robustness/break dichotomy of the paper end to end.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/game.h"
#include "counter/branching.h"
#include "counter/morris.h"
#include "distinct/l0_estimator.h"
#include "heavyhitters/robust_hh.h"
#include "moments/ams.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"
#include "strings/fingerprint.h"
#include "strings/pattern_match.h"

namespace wbs {
namespace {

// ------------------------------------------------------ game-runner core --

TEST(GameRunnerTest, ScriptedStreamReplaysExactly) {
  counter::ExactCounter alg;
  std::vector<stream::BitUpdate> script(100, stream::BitUpdate{1});
  core::ScriptedAdversary<stream::BitUpdate, double> adv(script);
  uint64_t truth = 0;
  auto result = core::RunGame<stream::BitUpdate, double>(
      &alg, &adv, 1000,
      [&](const stream::BitUpdate& u) { truth += u.bit; },
      [&](uint64_t, const double& answer) {
        return answer == double(truth);
      });
  EXPECT_TRUE(result.algorithm_survived);
  EXPECT_EQ(result.rounds_played, 100u);
  EXPECT_EQ(truth, 100u);
}

TEST(GameRunnerTest, ReportsFirstFailureRound) {
  // An "algorithm" that is wrong from round 10 on.
  class BrokenCounter final : public core::StreamAlg<stream::BitUpdate,
                                                     double> {
   public:
    Status Update(const stream::BitUpdate&) override {
      ++count_;
      return Status::OK();
    }
    double Query() const override {
      return count_ < 10 ? double(count_) : 0.0;
    }
    void SerializeState(core::StateWriter* w) const override {
      w->PutU64(count_);
    }
    uint64_t SpaceBits() const override { return 64; }

   private:
    uint64_t count_ = 0;
  };
  BrokenCounter alg;
  std::vector<stream::BitUpdate> script(50, stream::BitUpdate{1});
  core::ScriptedAdversary<stream::BitUpdate, double> adv(script);
  uint64_t truth = 0;
  auto result = core::RunGame<stream::BitUpdate, double>(
      &alg, &adv, 1000,
      [&](const stream::BitUpdate& u) { truth += u.bit; },
      [&](uint64_t, const double& a) { return a == double(truth); });
  EXPECT_FALSE(result.algorithm_survived);
  EXPECT_EQ(result.first_failure_round, 10u);
}

TEST(GameRunnerTest, StateViewExposesEverything) {
  // The adversary must see: serialized state, the seed, the randomness log.
  wbs::RandomTape tape(42);
  counter::MorrisCounter alg(0.5, 0.25, &tape);

  class InspectingAdversary final
      : public core::Adversary<stream::BitUpdate, double> {
   public:
    std::optional<stream::BitUpdate> NextUpdate(const core::StateView& view,
                                                const double&) override {
      last_view_round = view.round;
      seen_seed = view.rng_seed;
      log_size = view.randomness_log ? view.randomness_log->size() : 0;
      state_words = view.state_words.size();
      if (view.round >= 50) return std::nullopt;
      return stream::BitUpdate{1};
    }
    uint64_t last_view_round = 0, seen_seed = 0, log_size = 0,
             state_words = 0;
  };
  InspectingAdversary adv;
  auto result = core::RunGame<stream::BitUpdate, double>(
      &alg, &adv, 1000, [](const stream::BitUpdate&) {},
      [](uint64_t, const double&) { return true; });
  EXPECT_EQ(result.rounds_played, 50u);
  EXPECT_EQ(adv.seen_seed, 42u);       // no secret key
  EXPECT_GE(adv.log_size, 49u);        // every consumed word is visible
  EXPECT_GE(adv.state_words, 1u);
}

TEST(GameRunnerTest, UpdateErrorCountsAsLoss) {
  wbs::RandomTape tape(1);
  hh::RobustL1HeavyHitters alg(10, 0.2, 0.25, &tape);
  std::vector<stream::ItemUpdate> script = {{5}, {99}};  // 99 out of range
  core::ScriptedAdversary<stream::ItemUpdate, hh::HhList> adv(script);
  auto result = core::RunGame<stream::ItemUpdate, hh::HhList>(
      &alg, &adv, 10, [](const stream::ItemUpdate&) {},
      [](uint64_t, const hh::HhList&) { return true; });
  EXPECT_FALSE(result.algorithm_survived);
  EXPECT_EQ(result.first_failure_round, 2u);
}

// --------------------------------------- robustness / break dichotomy  --

TEST(DichotomyTest, KernelAdversaryKillsAmsButNotExact) {
  // One adversary, two victims: the o(n)-space linear sketch dies, the
  // Omega(n)-space exact algorithm survives — Theorem 1.9 in one test.
  wbs::RandomTape tape(2);
  moments::AmsF2Sketch sketch(1 << 14, 12, &tape);
  moments::AmsKernelAdversary adv(&sketch);
  ASSERT_TRUE(adv.armed());

  stream::FrequencyOracle truth(1 << 14);
  auto judge = [&](uint64_t, const double& answer) {
    double f2 = truth.Fp(2);
    if (f2 == 0) return true;
    return answer >= f2 / 3 && answer <= 3 * f2;
  };
  auto sketch_result = core::RunGame<stream::TurnstileUpdate, double>(
      &sketch, &adv, 10000,
      [&](const stream::TurnstileUpdate& u) { truth.Add(u.item, u.delta); },
      judge, /*stop_at_first_failure=*/false);
  EXPECT_FALSE(sketch_result.algorithm_survived);

  // Replay against the exact baseline.
  moments::AmsF2Sketch sketch2(1 << 14, 12, &tape);
  moments::AmsKernelAdversary adv2(&sketch2);
  ASSERT_TRUE(adv2.armed());
  moments::ExactF2Stream exact(1 << 14);
  stream::FrequencyOracle truth2(1 << 14);
  auto exact_result = core::RunGame<stream::TurnstileUpdate, double>(
      &exact, &adv2, 10000,
      [&](const stream::TurnstileUpdate& u) { truth2.Add(u.item, u.delta); },
      [&](uint64_t, const double& answer) {
        return answer == truth2.Fp(2);
      });
  EXPECT_TRUE(exact_result.algorithm_survived);
}

TEST(DichotomyTest, FermatTextFoolsKarpRabinNotDlogMatcher) {
  // Build a text where the Karp-Rabin matcher reports a FALSE occurrence
  // (the Fermat collision) while the dlog-fingerprint matcher stays exact.
  wbs::RandomTape tape(3);
  strings::KarpRabinParams kr = strings::KarpRabinParams::Generate(8, &tape);
  const size_t len = size_t(kr.p) + 2;
  auto [u, v] = strings::FermatCollision(kr, len);

  // Karp-Rabin side: fingerprint equality of u and v (distinct strings).
  strings::KarpRabin fu(kr), fv(kr);
  for (char c : u) fu.Append(uint64_t(uint8_t(c)));
  for (char c : v) fv.Append(uint64_t(uint8_t(c)));
  ASSERT_EQ(fu.value(), fv.value());
  // A KR-based equality tester is therefore fooled:
  EXPECT_NE(u, v);

  // Dlog side: PeriodicPatternMatcher searching for u inside v must find
  // nothing (v != u anywhere), despite the KR collision.
  crypto::DlogParams g = crypto::DlogParams::Generate(40, &tape);
  strings::PeriodicPatternMatcher matcher(
      u, strings::SmallestPeriod(u), g, 8);
  for (char c : v) {
    ASSERT_TRUE(matcher.Update({uint64_t(uint8_t(c)), 8}).ok());
  }
  EXPECT_TRUE(matcher.Query().empty());
}

TEST(DichotomyTest, BlindingKillsKmvButSisL0Sandwiched) {
  // The same adaptive insertion sequence: KMV freezes, Algorithm 5 keeps
  // its n^eps sandwich.
  const uint64_t universe = 1 << 22;  // large: plenty of blinding items
  wbs::RandomTape tape(4);
  distinct::KmvDistinct kmv(16, &tape);
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(kmv.Update({universe - 1 - i}).ok());
  }
  distinct::KmvBlindingAdversary adv(&kmv, universe);

  crypto::RandomOracle oracle(99);
  auto params = distinct::SisL0Params::Derive(universe, 0.5, 0.25, 100);
  distinct::SisL0Estimator sis(params, oracle, 1);
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(sis.Update({universe - 1 - i, 1}).ok());
  }

  stream::FrequencyOracle truth(universe);
  for (uint64_t i = 0; i < 16; ++i) truth.Add(universe - 1 - i);

  auto result = core::RunGame<stream::ItemUpdate, double>(
      &kmv, &adv, 3000,
      [&](const stream::ItemUpdate& u) {
        truth.Add(u.item);
        ASSERT_TRUE(sis.Update({u.item, 1}).ok());
      },
      [&](uint64_t round, const double& answer) {
        if (round < 1500) return true;
        return answer >= double(truth.L0()) / 4;
      });
  EXPECT_FALSE(result.algorithm_survived) << "KMV must be broken";
  // Algorithm 5 on the identical stream: sandwich holds.
  const double l0 = double(truth.L0());
  EXPECT_LE(sis.Query(), l0 + 1e-9);
  EXPECT_GE(sis.Query() * double(params.chunk_width), l0 - 1e-9);
}

TEST(DichotomyTest, MorrisSurvivesWhereTruncatedDies) {
  // Theorem 1.11 vs Lemma 2.1 head to head on the all-ones stream.
  const uint64_t n = 1 << 15;
  counter::TruncatedCounter trunc(6);
  wbs::RandomTape tape(5);
  counter::MorrisCounter morris(0.5, 0.1, &tape);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(trunc.Update({1}).ok());
    ASSERT_TRUE(morris.Update({1}).ok());
  }
  const double truth = double(n);
  EXPECT_GT(std::abs(trunc.Query() - truth), 0.5 * truth);   // broken
  EXPECT_LE(std::abs(morris.Query() - truth), 0.5 * truth);  // fine
  // ... in comparable space:
  EXPECT_LE(morris.SpaceBits(), trunc.SpaceBits() + 16);
}

TEST(EndToEndTest, RobustHhUnderScriptedZipfGame) {
  wbs::RandomTape workload_tape(6);
  std::vector<uint64_t> planted;
  auto s = stream::PlantedHeavyHitterStream(1 << 16, 30000, 2, 0.25,
                                            &workload_tape, &planted);
  std::vector<stream::ItemUpdate> script(s.begin(), s.end());

  wbs::RandomTape tape(7);
  hh::RobustL1HeavyHitters alg(1 << 16, 0.1, 0.25, &tape);
  core::ScriptedAdversary<stream::ItemUpdate, hh::HhList> adv(script);
  stream::FrequencyOracle truth(1 << 16);
  auto result = core::RunGame<stream::ItemUpdate, hh::HhList>(
      &alg, &adv, script.size(),
      [&](const stream::ItemUpdate& u) { truth.Add(u.item); },
      [&](uint64_t round, const hh::HhList& answer) {
        if (round < 10000) return true;
        // Both planted items (25% each) must be present.
        int found = 0;
        for (const auto& wi : answer) {
          for (uint64_t id : planted) found += wi.item == id ? 1 : 0;
        }
        return found == int(planted.size());
      });
  EXPECT_TRUE(result.algorithm_survived);
  EXPECT_GT(result.max_space_bits, 0u);
}

}  // namespace
}  // namespace wbs
