// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Per-producer fairness on the MPSC submission stage:
//
//   * producer SESSIONS are drained round-robin by the router, so a hot
//     producer that parked many batches cannot monopolize dispatch — a
//     second session's batches interleave instead of waiting for the
//     whole backlog (the regression this file exists to pin: the old
//     single-FIFO router applied one session's entire backlog first);
//   * the inflight valves admit blocked producers in ARRIVAL ORDER (FIFO
//     turnstile), so a hot producer looping on Submit cannot starve a
//     parked one past max_inflight_bytes / max_inflight_tickets;
//   * TrySubmit stays fail-fast under MULTIPLE concurrent producers: a
//     full valve answers ResourceExhausted to every racing producer
//     without blocking or enqueueing (previously only the single-producer
//     gate-sketch path was exercised).
//
// The observable is a recording sketch that logs the tag of every batch
// it applies, combined with a gate that parks the worker inside
// ApplyBatch so queues fill deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/backend.h"
#include "engine/client.h"
#include "engine/registry.h"
#include "stream/updates.h"

#include "engine_test_util.h"

namespace wbs::engine {
namespace {

// ------------------------------------------------- recording gate sketch --

struct FairGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = true;
  int waiting = 0;
  std::vector<uint64_t> applied;  // first item of every applied batch

  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    open = false;
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void AwaitWaiter() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return waiting > 0; });
  }
  void Record(uint64_t tag) {
    std::lock_guard<std::mutex> lock(mu);
    applied.push_back(tag);
  }
  std::vector<uint64_t> Applied() {
    std::lock_guard<std::mutex> lock(mu);
    return applied;
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    waiting = 0;
    applied.clear();
  }
  void Pass() {
    std::unique_lock<std::mutex> lock(mu);
    ++waiting;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
    --waiting;
  }
};

FairGate& Gate() {
  static FairGate* gate = new FairGate();
  return *gate;
}

class RecordingSketch final : public Sketch {
 public:
  const std::string& name() const override {
    static const std::string kName = "fair_recording";
    return kName;
  }
  Status Update(const stream::TurnstileUpdate& u) override {
    if (u.delta != 0) ++updates_;
    return Status::OK();
  }
  Status ApplyBatch(const UpdateBatch& batch) override {
    if (batch.size > 0) Gate().Record(batch.data[0].item);
    Gate().Pass();
    for (size_t i = 0; i < batch.size; ++i) {
      if (batch.data[i].delta != 0) ++updates_;
    }
    return Status::OK();
  }
  SketchSummary Summary() const override {
    SketchSummary s;
    s.sketch = name();
    s.has_scalar = true;
    s.scalar = double(updates_);
    s.updates = updates_;
    return s;
  }
  Status MergeFrom(const Sketch& other) override {
    const auto* o = dynamic_cast<const RecordingSketch*>(&other);
    if (o == nullptr) {
      return Status::InvalidArgument("fair_recording: type mismatch");
    }
    updates_ += o->updates_;
    return Status::OK();
  }
  uint64_t SpaceBits() const override { return 64; }

 private:
  uint64_t updates_ = 0;
};

bool RegisterRecordingSketch() {
  static bool once = [] {
    return SketchRegistry::Global()
        .Register("fair_recording",
                  [](const SketchConfig&) {
                    return std::make_unique<RecordingSketch>();
                  },
                  SketchFamily::kScalarEstimate)
        .ok();
  }();
  return once;
}

std::unique_ptr<Client> MakeFairClient(size_t max_inflight_bytes,
                                       size_t max_queue_batches = 64) {
  EXPECT_TRUE(RegisterRecordingSketch());
  Gate().Reset();
  ClientOptions opts;
  opts.ingest.num_shards = 1;  // every item lands on the one shard
  opts.ingest.num_threads = 1;
  opts.ingest.max_queue_batches = max_queue_batches;
  opts.ingest.max_inflight_bytes = max_inflight_bytes;
  opts.ingest.sketches = {"fair_recording"};
  opts.ingest.config = SketchConfig{}.WithUniverse(1 << 10).WithSeed(3);
  // The gate parks the worker inside the backend; keep this suite on the
  // in-process backend regardless of WBS_ENGINE_BACKEND.
  opts.ingest.backend = InProcessBackendFactory();
  auto client = Client::Create(opts);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

stream::TurnstileStream OneUpdate(uint64_t tag) {
  return stream::TurnstileStream{{tag, 1}};
}

stream::TurnstileStream FourUpdates(uint64_t tag) {
  return stream::TurnstileStream{{tag, 1}, {tag, 1}, {tag, 1}, {tag, 1}};
}

size_t IndexOf(const std::vector<uint64_t>& v, uint64_t tag) {
  auto it = std::find(v.begin(), v.end(), tag);
  EXPECT_NE(it, v.end()) << "tag " << tag << " never applied";
  return size_t(it - v.begin());
}

// ------------------------------------------------------- round-robin drain --

TEST(SessionFairnessTest, RouterDrainsSessionsRoundRobin) {
  auto client = MakeFairClient(/*bytes=*/0, /*max_queue_batches=*/1);
  auto a = client->OpenSession();
  auto b = client->OpenSession();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_NE(a.value().id, b.value().id);

  Gate().Close();
  // Hot session A parks five batches; the first reaches the worker and
  // blocks on the gate, the rest pile up (worker queue capped at one).
  ASSERT_TRUE(client->Submit(a.value(), OneUpdate(10)).ok());
  Gate().AwaitWaiter();
  for (uint64_t i = 1; i < 5; ++i) {
    ASSERT_TRUE(client->Submit(a.value(), OneUpdate(10 + i)).ok());
  }
  // Session B arrives with its own backlog while A's is parked.
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->Submit(b.value(), OneUpdate(20 + i)).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Gate().Open();
  ASSERT_TRUE(client->Finish().ok());

  const std::vector<uint64_t> applied = Gate().Applied();
  ASSERT_EQ(applied.size(), 9u);
  // Round-robin: B's first batch is dispatched before A's backlog is done.
  // (The old single-FIFO router applied ALL of A first — tags 10..14 —
  // because every A batch was submitted before any B batch.)
  EXPECT_LT(IndexOf(applied, 20), IndexOf(applied, 14))
      << "session B starved behind session A's backlog";
  // Per-session FIFO order is preserved.
  for (uint64_t i = 1; i < 5; ++i) {
    EXPECT_LT(IndexOf(applied, 10 + i - 1), IndexOf(applied, 10 + i));
  }
  for (uint64_t i = 1; i < 4; ++i) {
    EXPECT_LT(IndexOf(applied, 20 + i - 1), IndexOf(applied, 20 + i));
  }
}

// ------------------------------------------------------ fair valve admission --

TEST(SessionFairnessTest, ValveAdmitsBlockedProducersInArrivalOrder) {
  // Bytes valve sized for exactly one 4-update batch.
  auto client =
      MakeFairClient(FourUpdates(0).size() * sizeof(stream::TurnstileUpdate));
  Gate().Close();
  ASSERT_TRUE(client->Submit(FourUpdates(100)).ok());  // fills the valve
  Gate().AwaitWaiter();

  std::atomic<bool> victim_submitted{false};
  std::thread victim([&] {
    EXPECT_TRUE(client->Submit(FourUpdates(200)).ok());  // first waiter
    victim_submitted.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_FALSE(victim_submitted.load(std::memory_order_acquire));
  std::thread hot([&] {
    EXPECT_TRUE(client->Submit(FourUpdates(300)).ok());  // second waiter
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Gate().Open();
  victim.join();
  hot.join();
  ASSERT_TRUE(client->Finish().ok());

  // FIFO admission: the victim's batch is admitted (and applied) before
  // the hot producer's, because it arrived at the valve first.
  const std::vector<uint64_t> applied = Gate().Applied();
  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[0], 100u);
  EXPECT_EQ(applied[1], 200u) << "later arrival barged past the first waiter";
  EXPECT_EQ(applied[2], 300u);
  auto handle = client->Handle("fair_recording").value();
  EXPECT_EQ(client->QueryScalar(handle).value().updates, 12u);
}

// ------------------------------------- TrySubmit under concurrent producers --

TEST(MultiProducerFlowControlTest, TrySubmitFailsFastForEveryRacingProducer) {
  auto client =
      MakeFairClient(FourUpdates(0).size() * sizeof(stream::TurnstileUpdate));
  Gate().Close();
  auto first = client->Submit(FourUpdates(1));
  ASSERT_TRUE(first.ok());
  Gate().AwaitWaiter();  // worker parked; the valve is full

  // Many producers hammer TrySubmit concurrently: every attempt must fail
  // fast with ResourceExhausted — no blocking, no partial enqueue.
  constexpr size_t kProducers = 4;
  constexpr size_t kAttempts = 50;
  std::atomic<uint64_t> successes{0}, exhausted{0}, other_errors{0};
  {
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (size_t i = 0; i < kAttempts; ++i) {
          auto t = client->TrySubmit(FourUpdates(1000 + p));
          if (t.ok()) {
            ++successes;
          } else if (t.status().code() ==
                     Status::Code::kResourceExhausted) {
            ++exhausted;
          } else {
            ++other_errors;
          }
        }
      });
    }
    for (auto& t : producers) t.join();
  }
  EXPECT_EQ(successes.load(), 0u);
  EXPECT_EQ(other_errors.load(), 0u);
  EXPECT_EQ(exhausted.load(), kProducers * kAttempts);

  Gate().Open();
  ASSERT_TRUE(client->Wait(first.value()).ok());

  // Valve drained: concurrent TrySubmits are admitted again, and the
  // update count proves failed attempts never left a partial batch behind.
  std::atomic<uint64_t> admitted{0};
  {
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        auto t = client->TrySubmit(FourUpdates(2000 + p));
        if (t.ok()) ++admitted;
      });
    }
    for (auto& t : producers) t.join();
  }
  EXPECT_GE(admitted.load(), 1u);
  ASSERT_TRUE(client->Finish().ok());
  auto handle = client->Handle("fair_recording").value();
  EXPECT_EQ(client->QueryScalar(handle).value().updates,
            4 * (1 + admitted.load()));
}

// ---------------------------------------------------- barrier vs sessions --

TEST(SessionFairnessTest, BuriedTopologyBarrierFencesOtherSessions) {
  // A topology barrier parked BEHIND earlier data in its own lane must
  // still hold back later-sequence tickets queued in other lanes: a batch
  // submitted after AddShards() was issued has to be routed by the NEW
  // table. The observable is the new shard receiving its slot share of
  // that batch (the router re-scatters it against the installed view).
  // Hand-rolled options: this test wants several shards so the new shard
  // owns a detectable slot share.
  EXPECT_TRUE(RegisterRecordingSketch());
  Gate().Reset();
  ClientOptions opts;
  opts.ingest.num_shards = 4;
  opts.ingest.num_threads = 1;
  opts.ingest.max_queue_batches = 1;
  opts.ingest.sketches = {"fair_recording"};
  opts.ingest.config = SketchConfig{}.WithUniverse(1 << 10).WithSeed(3);
  opts.ingest.backend = InProcessBackendFactory();
  auto made = Client::Create(opts);
  ASSERT_TRUE(made.ok());
  auto client = std::move(made).value();
  auto other = client->OpenSession();
  ASSERT_TRUE(other.ok());

  Gate().Close();
  // Default lane: four data tickets; the first parks the worker, the rest
  // pile up in front of the barrier.
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->Submit(OneUpdate(i)).ok());
  }
  Gate().AwaitWaiter();
  // The barrier enqueues behind them in lane 0.
  std::thread grower([&] { EXPECT_TRUE(client->AddShards(1).ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // A later-sequence batch on ANOTHER lane, wide enough to cover every
  // slot. It must not be dispatched until the barrier installed the grown
  // table.
  stream::TurnstileStream wide;
  for (uint64_t item = 0; item < 1000; ++item) wide.push_back({item, 1});
  ASSERT_TRUE(client->Submit(other.value(), wide).ok());

  Gate().Open();
  grower.join();
  ASSERT_TRUE(client->Finish().ok());
  ASSERT_EQ(client->ingestor().num_shards(), 5u);
  // The new shard owns 1/5 of the slots; the wide batch must have reached
  // it. (With the barrier fenced only on lane fronts, the wide batch was
  // dispatched under the old 4-shard table and the new shard saw nothing.)
  auto moved_share = client->ingestor().ShardSummary(4, "fair_recording");
  ASSERT_TRUE(moved_share.ok()) << moved_share.status().ToString();
  EXPECT_GT(moved_share.value().updates, 0u)
      << "post-barrier batch was routed by the pre-barrier table";
}

// ------------------------------------------------------------ session API --

TEST(SessionFairnessTest, UnknownSessionRejectedAndIdsAreDistinct) {
  auto client = MakeFairClient(/*bytes=*/0);
  auto a = client->OpenSession();
  auto b = client->OpenSession();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value().id, b.value().id);
  EXPECT_NE(a.value().id, 0u);  // 0 is the shared default session

  ProducerSession bogus{1234};
  auto t = client->Submit(bogus, OneUpdate(1));
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), Status::Code::kInvalidArgument);
  // The default session keeps working.
  ASSERT_TRUE(client->Submit(OneUpdate(2)).ok());
  ASSERT_TRUE(client->Finish().ok());
  auto handle = client->Handle("fair_recording").value();
  EXPECT_EQ(client->QueryScalar(handle).value().updates, 1u);

  // Inline mode (num_threads == 0) validates sessions identically.
  ClientOptions opts;
  opts.ingest.num_shards = 2;
  opts.ingest.num_threads = 0;
  opts.ingest.sketches = {"ams_f2"};
  opts.ingest.config = SketchConfig{}.WithUniverse(1 << 10).WithSeed(5);
  auto inline_client = Client::Create(opts);
  ASSERT_TRUE(inline_client.ok());
  auto bad = inline_client.value()->Submit(bogus, OneUpdate(1));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
  auto opened = inline_client.value()->OpenSession();
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(inline_client.value()->Submit(opened.value(), OneUpdate(1)).ok());
  ASSERT_TRUE(inline_client.value()->Finish().ok());
}

}  // namespace
}  // namespace wbs::engine
