// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// The sharded ingestion engine: registry wiring, batched-update semantics,
// shard-merge correctness against single-instance references and exact
// ground truth (Zipf, planted heavy hitters, insert/delete churn), and
// bit-for-bit determinism under a fixed seed regardless of thread count.
// Uses the typed engine::Client surface (handles + typed queries); the
// seed-era Driver shim is gone (see src/engine/README.md for the
// historical migration table).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "distinct/l0_estimator.h"
#include "engine/backend.h"
#include "engine/client.h"
#include "engine/registry.h"
#include "engine/sharded_ingestor.h"
#include "stream/frequency_oracle.h"
#include "stream/workload.h"

#include "engine_test_util.h"

namespace wbs::engine {
namespace {

SketchConfig TestConfig(uint64_t universe, uint64_t seed) {
  return SketchConfig{}
      .WithUniverse(universe)
      .WithSeed(seed)
      .With(HeavyHitterOptions{}.WithEps(0.1).WithPhi(0.2))
      .With(MisraGriesOptions{}.WithCounters(64))
      .With(AmsOptions{}.WithRows(48));
}

// ---------------------------------------------------------------- registry --

TEST(SketchRegistryTest, BuiltinsRegistered) {
  auto names = SketchRegistry::Global().Names();
  for (const char* expected : {"misra_gries", "ams_f2", "sis_l0",
                               "rank_decision", "robust_hh", "crhf_hh"}) {
    EXPECT_TRUE(std::count(names.begin(), names.end(), expected))
        << "missing builtin: " << expected;
  }
}

TEST(SketchRegistryTest, BuiltinFamiliesDeclared) {
  auto family = [](const char* name) {
    auto f = SketchRegistry::Global().FamilyOf(name);
    EXPECT_TRUE(f.ok()) << name;
    return f.value();
  };
  EXPECT_EQ(family("misra_gries"), SketchFamily::kHeavyHitter);
  EXPECT_EQ(family("robust_hh"), SketchFamily::kHeavyHitter);
  EXPECT_EQ(family("crhf_hh"), SketchFamily::kHeavyHitter);
  EXPECT_EQ(family("ams_f2"), SketchFamily::kScalarEstimate);
  EXPECT_EQ(family("sis_l0"), SketchFamily::kScalarEstimate);
  EXPECT_EQ(family("rank_decision"), SketchFamily::kRankVerdict);
  EXPECT_FALSE(SketchRegistry::Global().FamilyOf("no_such_sketch").ok());
}

TEST(SketchRegistryTest, CreateUnknownFails) {
  auto r = SketchRegistry::Global().Create("no_such_sketch", SketchConfig{});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(SketchRegistryTest, DuplicateRegistrationRejected) {
  auto s = SketchRegistry::Global().Register(
      "misra_gries", [](const SketchConfig&) -> std::unique_ptr<Sketch> {
        return nullptr;
      });
  EXPECT_FALSE(s.ok());
}

TEST(SketchRegistryTest, CustomSketchRoundTrip) {
  // A user-registered sketch participates in the engine like any builtin;
  // with the default kGeneric family every typed query kind is allowed.
  class CountingSketch final : public Sketch {
   public:
    const std::string& name() const override {
      static const std::string n = "test_counting";
      return n;
    }
    Status Update(const stream::TurnstileUpdate& u) override {
      net_ += u.delta;
      return Status::OK();
    }
    SketchSummary Summary() const override {
      SketchSummary s;
      s.sketch = "test_counting";
      s.has_scalar = true;
      s.scalar = double(net_);
      return s;
    }
    Status MergeFrom(const Sketch& other) override {
      net_ += int64_t(static_cast<const CountingSketch&>(other).net_);
      return Status::OK();
    }
    uint64_t SpaceBits() const override { return 64; }

   private:
    int64_t net_ = 0;
  };
  ASSERT_TRUE(SketchRegistry::Global()
                  .Register("test_counting",
                            [](const SketchConfig&) {
                              return std::make_unique<CountingSketch>();
                            })
                  .ok());
  // Pinned to the in-process backend: CountingSketch implements no wire
  // format (Sketch::SerializeState default), so its state cannot cross a
  // remote shard boundary — engine_backend_test pins the Unimplemented
  // error a loopback engine surfaces for such sketches.
  auto client = MakeClient({"test_counting"}, TestConfig(1 << 10, 7), 4, 0,
                           InProcessBackendFactory());
  wbs::RandomTape tape(7);
  auto s = stream::UniformStream(1 << 10, 5000, &tape);
  ASSERT_TRUE(Replay(client.get(), s).ok());
  ASSERT_TRUE(client->Finish().ok());
  auto handle = client->Handle("test_counting");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle.value().family(), SketchFamily::kGeneric);
  auto scalar = client->QueryScalar(handle.value());
  ASSERT_TRUE(scalar.ok());
  EXPECT_DOUBLE_EQ(scalar.value().value, 5000.0);
}

// ---------------------------------------------------------------- batching --

TEST(EngineBatchTest, BatchedEqualsUnbatchedForLinearSketches) {
  // Linear sketches pre-aggregate duplicates inside a batch; by linearity
  // the resulting state is identical to per-update ingestion.
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(11);
  auto s = stream::ZipfStream(universe, 20000, 1.2, &tape);
  SketchConfig cfg = TestConfig(universe, 42);

  for (const char* name : {"ams_f2", "sis_l0"}) {
    auto unbatched = SketchRegistry::Global().Create(name, cfg);
    auto batched = SketchRegistry::Global().Create(name, cfg);
    ASSERT_TRUE(unbatched.ok() && batched.ok());
    std::vector<stream::TurnstileUpdate> turnstile;
    turnstile.reserve(s.size());
    for (const auto& u : s) turnstile.push_back({u.item, 1});
    for (const auto& u : turnstile) {
      ASSERT_TRUE(unbatched.value()->Update(u).ok());
    }
    ASSERT_TRUE(batched.value()
                    ->ApplyBatch({turnstile.data(), turnstile.size()})
                    .ok());
    SketchSummary a = unbatched.value()->Summary();
    SketchSummary b = batched.value()->Summary();
    EXPECT_EQ(a.scalar, b.scalar) << name;  // exact: linearity
    EXPECT_EQ(a.updates, b.updates) << name;
  }
}

TEST(EngineBatchTest, BatchedMisraGriesKeepsDeterministicGuarantee) {
  // Weighted aggregation may change which counters survive eviction, but
  // never the Misra-Gries guarantee: estimates underestimate by at most
  // processed/(k+1).
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(13);
  auto s = stream::ZipfStream(universe, 30000, 1.1, &tape);
  stream::FrequencyOracle truth(universe);
  truth.AddStream(s);
  SketchConfig cfg = TestConfig(universe, 42);

  auto batched = SketchRegistry::Global().Create("misra_gries", cfg);
  ASSERT_TRUE(batched.ok());
  std::vector<stream::TurnstileUpdate> turnstile;
  for (const auto& u : s) turnstile.push_back({u.item, 1});
  ASSERT_TRUE(
      batched.value()->ApplyBatch({turnstile.data(), turnstile.size()}).ok());
  SketchSummary summary = batched.value()->Summary();
  const double bound =
      double(s.size()) / double(cfg.misra_gries.counters + 1);
  for (const auto& [item, f] : truth.frequencies()) {
    const double est = summary.Estimate(item);
    EXPECT_LE(est, double(f) + 1e-9) << item;          // never overestimates
    EXPECT_GE(est, double(f) - bound - 1e-9) << item;  // bounded underestimate
  }
}

TEST(EngineBatchTest, InsertionOnlySketchRejectsNegativeDelta) {
  SketchConfig cfg = TestConfig(1 << 10, 3);
  auto mg = SketchRegistry::Global().Create("misra_gries", cfg);
  ASSERT_TRUE(mg.ok());
  EXPECT_FALSE(mg.value()->Update({5, -1}).ok());
  auto hh = SketchRegistry::Global().Create("robust_hh", cfg);
  ASSERT_TRUE(hh.ok());
  EXPECT_FALSE(hh.value()->Update({5, -1}).ok());
}

TEST(EngineBatchTest, MergeTypeMismatchRejected) {
  SketchConfig cfg = TestConfig(1 << 10, 3);
  auto mg = SketchRegistry::Global().Create("misra_gries", cfg);
  auto ams = SketchRegistry::Global().Create("ams_f2", cfg);
  ASSERT_TRUE(mg.ok() && ams.ok());
  EXPECT_FALSE(mg.value()->MergeFrom(*ams.value()).ok());
}

// ------------------------------------------------- shard merge vs reference --

// Linear sketches: a sharded run's merged state must be bit-identical to a
// single-shard run over the same stream, on both insertion (Zipf) and
// turnstile (churn) workloads.
TEST(EngineMergeTest, LinearSketchesShardMergeExactOnZipf) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(21);
  auto s = stream::ZipfStream(universe, 40000, 1.1, &tape);
  SketchConfig cfg = TestConfig(universe, 99);

  auto sharded = MakeClient({"ams_f2", "sis_l0"}, cfg, 4, 0);
  auto single = MakeClient({"ams_f2", "sis_l0"}, cfg, 1, 0);
  ASSERT_TRUE(Replay(sharded.get(), s).ok());
  ASSERT_TRUE(Replay(single.get(), s).ok());
  ASSERT_TRUE(sharded->Finish().ok());
  ASSERT_TRUE(single->Finish().ok());

  for (const char* name : {"ams_f2", "sis_l0"}) {
    auto merged = sharded->QueryScalar(sharded->Handle(name).value());
    auto reference = single->QueryScalar(single->Handle(name).value());
    ASSERT_TRUE(merged.ok() && reference.ok()) << name;
    EXPECT_EQ(merged.value().value, reference.value().value) << name;
    EXPECT_EQ(merged.value().updates, reference.value().updates) << name;
  }
}

TEST(EngineMergeTest, LinearSketchesShardMergeExactOnChurn) {
  const uint64_t universe = 1 << 12;
  wbs::RandomTape tape(22);
  auto s = stream::InsertDeleteChurnStream(universe, /*live=*/100,
                                           /*churn=*/3000, &tape);
  stream::FrequencyOracle truth(universe);
  truth.AddStream(s);
  ASSERT_EQ(truth.L0(), 100u);  // deletions truly cancel

  SketchConfig cfg = TestConfig(universe, 7);
  auto sharded = MakeClient({"ams_f2", "sis_l0"}, cfg, 4, 0);
  auto single = MakeClient({"ams_f2", "sis_l0"}, cfg, 1, 0);
  ASSERT_TRUE(Replay(sharded.get(), s).ok());
  ASSERT_TRUE(Replay(single.get(), s).ok());
  ASSERT_TRUE(sharded->Finish().ok());
  ASSERT_TRUE(single->Finish().ok());

  for (const char* name : {"ams_f2", "sis_l0"}) {
    auto merged = sharded->QueryScalar(sharded->Handle(name).value());
    auto reference = single->QueryScalar(single->Handle(name).value());
    ASSERT_TRUE(merged.ok() && reference.ok()) << name;
    EXPECT_EQ(merged.value().value, reference.value().value) << name;
  }

  // And both match ground truth within the configured guarantees:
  // SIS-L0 answers in [L0 / chunk_width, min(L0, num_chunks)].
  auto l0 = sharded->QueryScalar(sharded->Handle("sis_l0").value());
  ASSERT_TRUE(l0.ok());
  const auto params = distinct::SisL0Params::Derive(
      universe, cfg.sis_l0.eps, cfg.sis_l0.c, cfg.sis_l0.f_inf_bound);
  EXPECT_GE(l0.value().value,
            double(truth.L0()) / double(params.chunk_width) - 1e-9);
  EXPECT_LE(l0.value().value, double(truth.L0()) + 1e-9);
}

TEST(EngineMergeTest, MisraGriesShardMergeExactWithoutEviction) {
  // With capacity above the stream's support size no counter is ever
  // evicted, so shard-merged Misra-Gries equals the single-shard run AND
  // exact ground truth — the "exact" half of the merge contract.
  const uint64_t universe = 256;
  wbs::RandomTape tape(31);
  auto s = stream::ZipfStream(universe, 20000, 1.05, &tape);
  stream::FrequencyOracle truth(universe);
  truth.AddStream(s);

  SketchConfig cfg = TestConfig(universe, 5);
  cfg.misra_gries.counters = 512;  // > universe: no eviction anywhere
  auto sharded = MakeClient({"misra_gries"}, cfg, 4, 0);
  auto single = MakeClient({"misra_gries"}, cfg, 1, 0);
  ASSERT_TRUE(Replay(sharded.get(), s).ok());
  ASSERT_TRUE(Replay(single.get(), s).ok());
  ASSERT_TRUE(sharded->Finish().ok());
  ASSERT_TRUE(single->Finish().ok());

  auto mg_sharded = sharded->Handle("misra_gries").value();
  auto mg_single = single->Handle("misra_gries").value();
  auto merged = sharded->RawSummary(mg_sharded);
  auto reference = single->RawSummary(mg_single);
  ASSERT_TRUE(merged.ok() && reference.ok());
  ASSERT_EQ(merged.value().items.size(), reference.value().items.size());
  for (const auto& [item, f] : truth.frequencies()) {
    // Typed point queries against both clients agree with exact truth.
    auto a = sharded->QueryPoint(mg_sharded, item);
    auto b = single->QueryPoint(mg_single, item);
    ASSERT_TRUE(a.ok() && b.ok()) << item;
    EXPECT_DOUBLE_EQ(a.value().estimate, double(f)) << item;
    EXPECT_DOUBLE_EQ(b.value().estimate, double(f)) << item;
    EXPECT_TRUE(a.value().tracked);
  }
}

TEST(EngineMergeTest, MisraGriesShardMergeKeepsGuaranteeUnderEviction) {
  const uint64_t universe = 1 << 14;
  wbs::RandomTape tape(33);
  auto s = stream::ZipfStream(universe, 50000, 1.1, &tape);
  stream::FrequencyOracle truth(universe);
  truth.AddStream(s);

  SketchConfig cfg = TestConfig(universe, 5);
  cfg.misra_gries.counters = 64;
  auto sharded = MakeClient({"misra_gries"}, cfg, 4, 0);
  ASSERT_TRUE(Replay(sharded.get(), s).ok());
  ASSERT_TRUE(sharded->Finish().ok());
  auto mg = sharded->Handle("misra_gries").value();

  // Merged summary: never overestimates; underestimates by at most the
  // per-shard bound plus the merge bound <= 2m/(k+1).
  const double bound =
      2.0 * double(s.size()) / double(cfg.misra_gries.counters + 1);
  for (const auto& [item, f] : truth.frequencies()) {
    auto point = sharded->QueryPoint(mg, item);
    ASSERT_TRUE(point.ok()) << item;
    EXPECT_LE(point.value().estimate, double(f) + 1e-9) << item;
    EXPECT_GE(point.value().estimate, double(f) - bound - 1e-9) << item;
  }
}

TEST(EngineMergeTest, PlantedHeavyHittersRecoveredAfterShardMerge) {
  const uint64_t universe = 1 << 20;
  const uint64_t m = 50000;
  int robust_misses = 0, crhf_misses = 0;
  for (int trial = 0; trial < 3; ++trial) {
    wbs::RandomTape tape(400 + trial);
    std::vector<uint64_t> planted;
    auto s = stream::PlantedHeavyHitterStream(universe, m, 3, 0.2, &tape,
                                              &planted);
    SketchConfig cfg = TestConfig(universe, 1000 + trial);
    auto client =
        MakeClient({"misra_gries", "robust_hh", "crhf_hh"}, cfg, 4, 0);
    ASSERT_TRUE(Replay(client.get(), s).ok());
    ASSERT_TRUE(client->Finish().ok());

    // Misra-Gries is deterministic: every 20%-heavy item must be reported
    // with an estimate above f - 2m/(k+1).
    auto mg = client->Handle("misra_gries").value();
    const double mg_bound =
        2.0 * double(m) / double(cfg.misra_gries.counters + 1);
    for (uint64_t id : planted) {
      auto point = client->QueryPoint(mg, id);
      ASSERT_TRUE(point.ok());
      EXPECT_GE(point.value().estimate, 0.2 * double(m) - mg_bound - 1e-9)
          << "trial " << trial << " item " << id;
    }
    // Sampling sketches: candidate-list union across shards must contain the
    // planted items with the configured probability; tally misses via the
    // typed top-k surface (k larger than any candidate list).
    auto robust = client->QueryTopK(client->Handle("robust_hh").value(),
                                    1 << 20);
    auto crhf = client->QueryTopK(client->Handle("crhf_hh").value(), 1 << 20);
    ASSERT_TRUE(robust.ok() && crhf.ok());
    for (uint64_t id : planted) {
      std::set<uint64_t> robust_items, crhf_items;
      for (const auto& wi : robust.value().items) robust_items.insert(wi.item);
      for (const auto& wi : crhf.value().items) crhf_items.insert(wi.item);
      robust_misses += robust_items.count(id) ? 0 : 1;
      crhf_misses += crhf_items.count(id) ? 0 : 1;
    }
  }
  EXPECT_LE(robust_misses, 2);
  EXPECT_LE(crhf_misses, 2);
}

TEST(EngineMergeTest, RankDecisionShardMergeExact) {
  // Stream a diagonal matrix entry-wise: rank grows to rank k; the sharded
  // merged sketch must agree with the single-shard run at every checkpoint.
  SketchConfig cfg = TestConfig(1, 17);
  cfg.rank.n = 32;
  cfg.rank.k = 8;
  stream::TurnstileStream diag;
  for (size_t i = 0; i < 8; ++i) {
    diag.push_back({uint64_t(i) * cfg.rank.n + i, 1});  // A[i][i] += 1
  }
  auto sharded = MakeClient({"rank_decision"}, cfg, 4, 0);
  auto single = MakeClient({"rank_decision"}, cfg, 1, 0);
  ASSERT_TRUE(Replay(sharded.get(), diag, /*batch=*/3).ok());
  ASSERT_TRUE(Replay(single.get(), diag, /*batch=*/3).ok());
  ASSERT_TRUE(sharded->Finish().ok());
  ASSERT_TRUE(single->Finish().ok());
  auto merged = sharded->QueryRank(sharded->Handle("rank_decision").value());
  auto reference = single->QueryRank(single->Handle("rank_decision").value());
  ASSERT_TRUE(merged.ok() && reference.ok());
  EXPECT_EQ(merged.value().rank_at_least_k, reference.value().rank_at_least_k);
  EXPECT_TRUE(merged.value().rank_at_least_k);  // rank 8 >= k = 8
}

// ------------------------------------------------------------- determinism --

TEST(EngineDeterminismTest, SummariesIdenticalAcrossThreadCounts) {
  const uint64_t universe = 1 << 14;
  wbs::RandomTape tape(55);
  auto zipf = stream::ZipfStream(universe, 30000, 1.1, &tape);
  auto churn = stream::InsertDeleteChurnStream(universe, 200, 2000, &tape);

  auto run = [&](size_t threads) {
    SketchConfig cfg = TestConfig(universe, 2024);
    // Turnstile-capable set so the churn stream can ride along.
    auto client = MakeClient({"ams_f2", "sis_l0"}, cfg, 4, threads);
    EXPECT_TRUE(Replay(client.get(), zipf, 512).ok());
    EXPECT_TRUE(Replay(client.get(), churn, 512).ok());
    EXPECT_TRUE(client->Finish().ok());
    std::vector<ScalarEstimate> out;
    for (const char* name : {"ams_f2", "sis_l0"}) {
      auto scalar = client->QueryScalar(client->Handle(name).value());
      EXPECT_TRUE(scalar.ok()) << name;
      out.push_back(scalar.value());
    }
    return out;
  };

  auto reference = run(0);
  for (size_t threads : {1u, 2u, 4u}) {
    auto got = run(threads);
    ASSERT_EQ(got.size(), reference.size()) << threads << " threads";
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].value, reference[i].value)
          << "sketch " << i << " with " << threads << " threads";
      EXPECT_EQ(got[i].updates, reference[i].updates)
          << "sketch " << i << " with " << threads << " threads";
    }
  }
}

TEST(EngineDeterminismTest, SamplingSketchDeterministicAcrossThreadCounts) {
  const uint64_t universe = 1 << 16;
  wbs::RandomTape tape(66);
  auto s = stream::ZipfStream(universe, 20000, 1.2, &tape);

  auto run = [&](size_t threads) {
    SketchConfig cfg = TestConfig(universe, 77);
    auto client = MakeClient({"robust_hh", "misra_gries"}, cfg, 4, threads);
    EXPECT_TRUE(Replay(client.get(), s).ok());
    EXPECT_TRUE(client->Finish().ok());
    auto robust = client->QueryTopK(client->Handle("robust_hh").value(),
                                    1 << 20);
    auto mg = client->QueryTopK(client->Handle("misra_gries").value(),
                                1 << 20);
    EXPECT_TRUE(robust.ok() && mg.ok());
    return std::make_pair(std::move(robust).value(), std::move(mg).value());
  };

  auto [robust_ref, mg_ref] = run(0);
  for (size_t threads : {1u, 4u}) {
    auto [robust, mg] = run(threads);
    ASSERT_EQ(robust.items.size(), robust_ref.items.size());
    for (size_t i = 0; i < robust.items.size(); ++i) {
      EXPECT_EQ(robust.items[i].item, robust_ref.items[i].item);
      EXPECT_EQ(robust.items[i].estimate, robust_ref.items[i].estimate);
    }
    ASSERT_EQ(mg.items.size(), mg_ref.items.size());
    for (size_t i = 0; i < mg.items.size(); ++i) {
      EXPECT_EQ(mg.items[i].item, mg_ref.items[i].item);
      EXPECT_EQ(mg.items[i].estimate, mg_ref.items[i].estimate);
    }
  }
}

// ---------------------------------------------------------------- ingestor --

TEST(ShardedIngestorTest, ShardOfIsStableAndCoversShards) {
  std::set<size_t> hit;
  for (uint64_t item = 0; item < 1000; ++item) {
    size_t shard = ShardedIngestor::ShardOf(item, 8);
    EXPECT_EQ(shard, ShardedIngestor::ShardOf(item, 8));
    EXPECT_LT(shard, 8u);
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), 8u);  // 1000 items must touch all 8 shards
}

TEST(ShardedIngestorTest, SubmitAfterFinishFails) {
  IngestorOptions opts;
  opts.num_shards = 2;
  opts.sketches = {"ams_f2"};
  opts.config = TestConfig(1 << 10, 1);
  auto ingestor = ShardedIngestor::Create(opts);
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE(ingestor.value()->Finish().ok());
  stream::TurnstileUpdate u{1, 1};
  EXPECT_FALSE(ingestor.value()->Submit(&u, 1).ok());
  EXPECT_FALSE(ingestor.value()->SubmitAsync(&u, 1).ok());
}

TEST(ShardedIngestorTest, WorkerErrorSurfacesOnFlush) {
  IngestorOptions opts;
  opts.num_shards = 2;
  opts.num_threads = 2;
  opts.sketches = {"ams_f2"};
  opts.config = TestConfig(/*universe=*/16, 1);
  auto ingestor = ShardedIngestor::Create(opts);
  ASSERT_TRUE(ingestor.ok());
  stream::TurnstileUpdate bad{1 << 20, 1};  // out of universe
  Status submit = ingestor.value()->Submit(&bad, 1);
  Status flush = ingestor.value()->Flush();
  EXPECT_FALSE(submit.ok() && flush.ok());
}

TEST(ShardedIngestorTest, UnknownSketchNameRejectedAtCreate) {
  IngestorOptions opts;
  opts.num_shards = 2;
  opts.sketches = {"definitely_not_registered"};
  auto ingestor = ShardedIngestor::Create(opts);
  EXPECT_FALSE(ingestor.ok());
}

TEST(ShardedIngestorTest, SpaceBitsAccumulatesAcrossShards) {
  SketchConfig cfg = TestConfig(1 << 10, 9);
  auto client = MakeClient({"misra_gries"}, cfg, 4, 0);
  wbs::RandomTape tape(9);
  auto s = stream::UniformStream(1 << 10, 2000, &tape);
  ASSERT_TRUE(Replay(client.get(), s).ok());
  ASSERT_TRUE(client->Finish().ok());
  EXPECT_GT(client->ingestor().SpaceBits(), 0u);
}

}  // namespace
}  // namespace wbs::engine
