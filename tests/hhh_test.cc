// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Hierarchical heavy hitters: domain algebra, exact ground truth
// (Definition 2.9), TMS12 (Theorem 2.11), BernHHH (Algorithm 3) and the
// robust Algorithm 4 (Theorem 2.14).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "hhh/hhh.h"
#include "stream/workload.h"

namespace wbs::hhh {
namespace {

// -------------------------------------------------------------- Hierarchy --

TEST(HierarchyTest, BinaryHeight) {
  Hierarchy h = Hierarchy::Binary(1 << 10);
  EXPECT_EQ(h.height(), 10);
  EXPECT_EQ(h.bits_per_level(), 1);
}

TEST(HierarchyTest, ByteHeight) {
  Hierarchy h = Hierarchy::Bytes(32);
  EXPECT_EQ(h.height(), 4);
}

TEST(HierarchyTest, PrefixOfDropsLowBits) {
  Hierarchy h = Hierarchy::Bytes(32);
  const uint64_t ip = 0xC0A80101;  // 192.168.1.1
  EXPECT_EQ(h.PrefixOf(ip, 0).value, ip);
  EXPECT_EQ(h.PrefixOf(ip, 1).value, 0xC0A801u);  // /24
  EXPECT_EQ(h.PrefixOf(ip, 2).value, 0xC0A8u);    // /16
  EXPECT_EQ(h.PrefixOf(ip, 4).value, 0u);         // root
}

TEST(HierarchyTest, ParentChain) {
  Hierarchy h = Hierarchy::Binary(16);
  Prefix p = h.PrefixOf(0b1011, 0);
  Prefix parent = h.Parent(p);
  EXPECT_EQ(parent.level, 1);
  EXPECT_EQ(parent.value, 0b101u);
}

TEST(HierarchyTest, AncestorRelation) {
  Hierarchy h = Hierarchy::Binary(16);
  Prefix leaf = h.PrefixOf(0b1011, 0);
  Prefix anc = h.PrefixOf(0b1011, 2);  // 0b10
  EXPECT_TRUE(h.IsAncestorOrSelf(anc, leaf));
  EXPECT_TRUE(h.IsAncestorOrSelf(leaf, leaf));
  EXPECT_FALSE(h.IsAncestorOrSelf(leaf, anc));
  Prefix other = {2, 0b11};
  EXPECT_FALSE(h.IsAncestorOrSelf(other, leaf));
}

TEST(HierarchyTest, PrefixBitsShrinkUpTheTree) {
  Hierarchy h = Hierarchy::Bytes(32);
  EXPECT_GT(h.PrefixBits(0), h.PrefixBits(2));
}

// --------------------------------------------------------------- ExactHhh --

TEST(ExactHhhTest, SingleHeavyLeaf) {
  Hierarchy h = Hierarchy::Binary(16);
  stream::FrequencyOracle o(16);
  o.Add(5, 100);
  o.Add(3, 1);
  HhhList out = ExactHhh(o, h, 0.5);
  // Leaf 5 holds ~99% of the mass: reported at level 0; its ancestors'
  // conditioned counts are then ~1% and not reported.
  bool leaf_found = false;
  for (const auto& e : out) {
    if (e.prefix.level == 0 && e.prefix.value == 5) leaf_found = true;
    EXPECT_LE(e.prefix.level, 1);
  }
  EXPECT_TRUE(leaf_found);
}

TEST(ExactHhhTest, SiblingsAggregateToParent) {
  // No single leaf is heavy, but a parent prefix is: classic HHH shape.
  Hierarchy h = Hierarchy::Binary(16);
  stream::FrequencyOracle o(16);
  // Leaves 8..11 (prefix 0b10 at level 2) each get 25 => prefix mass 100.
  for (uint64_t leaf : {8u, 9u, 10u, 11u}) o.Add(leaf, 25);
  o.Add(0, 1);
  HhhList out = ExactHhh(o, h, 0.5);
  bool parent_found = false;
  for (const auto& e : out) {
    if (e.prefix.level == 2 && e.prefix.value == 0b10) parent_found = true;
    EXPECT_NE(e.prefix.level, 0);  // no leaf is individually heavy
  }
  EXPECT_TRUE(parent_found);
}

TEST(ExactHhhTest, ReportedDescendantsExcluded) {
  Hierarchy h = Hierarchy::Binary(16);
  stream::FrequencyOracle o(16);
  o.Add(4, 100);   // heavy leaf under prefix 0b0 at every level
  o.Add(5, 10);    // sibling, light
  HhhList out = ExactHhh(o, h, 0.3);
  // After reporting leaf 4, its ancestors' conditioned counts are ~10,
  // below the 33 threshold: only one report.
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].prefix.level, 0);
  EXPECT_EQ(out[0].prefix.value, 4u);
}

TEST(ExactConditionedCountTest, MatchesDefinition) {
  Hierarchy h = Hierarchy::Binary(8);
  stream::FrequencyOracle o(8);
  o.Add(0, 10);
  o.Add(1, 20);
  o.Add(2, 30);
  // Prefix {level 2, value 0} covers leaves 0..3.
  HhhList reported;
  EXPECT_DOUBLE_EQ(
      ExactConditionedCount(o, h, {2, 0}, reported), 60.0);
  reported.push_back({{0, 1}, 20.0});  // report leaf 1
  EXPECT_DOUBLE_EQ(
      ExactConditionedCount(o, h, {2, 0}, reported), 40.0);
}

// ---------------------------------------------------------------- Tms12Hhh --

TEST(Tms12HhhTest, FindsPlantedHierarchicalStructure) {
  Hierarchy h = Hierarchy::Bytes(16);  // 2 levels of bytes
  Tms12Hhh alg(h, 0.05);
  // 40% of traffic in prefix 0xAB??, spread over 16 leaves (2.5% each).
  for (int i = 0; i < 10000; ++i) {
    uint64_t item;
    if (i % 5 < 2) {
      item = 0xAB00 + uint64_t(i % 16);
    } else {
      item = uint64_t(i * 2654435761ULL) % 0x8000;
    }
    alg.Add(item);
  }
  HhhList out = alg.Query(0.2);
  bool prefix_found = false;
  for (const auto& e : out) {
    if (e.prefix.level == 1 && e.prefix.value == 0xAB) prefix_found = true;
  }
  EXPECT_TRUE(prefix_found);
}

TEST(Tms12HhhTest, AccuracyAxiom) {
  // Definition 2.10 (1): f*_p - eps m <= f_p <= f*_p (MG underestimates).
  Hierarchy h = Hierarchy::Binary(256);
  const double eps = 0.1;
  Tms12Hhh alg(h, eps);
  stream::FrequencyOracle o(256);
  wbs::RandomTape tape(31);
  const uint64_t m = 5000;
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t item = tape.UniformInt(16);  // concentrated support
    alg.Add(item);
    o.Add(item);
  }
  for (const auto& e : alg.Query(0.3)) {
    double truth = ExactConditionedCount(o, h, e.prefix, {});
    EXPECT_LE(e.estimate, truth + 1e-9);
    EXPECT_GE(e.estimate, truth - eps * double(m) - 1e-9);
  }
}

TEST(Tms12HhhTest, CoverageAxiom) {
  // Definition 2.10 (2): any unreported prefix has uncovered mass <= ~gamma m
  // (we allow the eps-slack the approximate algorithm is entitled to).
  Hierarchy h = Hierarchy::Binary(64);
  const double eps = 0.05, gamma = 0.2;
  Tms12Hhh alg(h, eps);
  stream::FrequencyOracle o(64);
  wbs::RandomTape tape(32);
  const uint64_t m = 8000;
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t item = tape.UniformInt(64);
    alg.Add(item);
    o.Add(item);
  }
  HhhList reported = alg.Query(gamma);
  for (int level = 0; level <= h.height(); ++level) {
    for (uint64_t v = 0; v < (uint64_t(64) >> level); ++v) {
      Prefix p{level, v};
      bool is_reported = false;
      for (const auto& e : reported) {
        if (e.prefix == p) is_reported = true;
      }
      if (is_reported) continue;
      double uncovered = ExactConditionedCount(o, h, p, reported);
      EXPECT_LE(uncovered, (gamma + 2 * eps) * double(m))
          << "level " << level << " value " << v;
    }
  }
}

TEST(Tms12HhhTest, DeterministicReplay) {
  Hierarchy h = Hierarchy::Bytes(16);
  Tms12Hhh a(h, 0.1), b(h, 0.1);
  for (int i = 0; i < 3000; ++i) {
    uint64_t item = uint64_t(i * i) % 60000;
    a.Add(item);
    b.Add(item);
  }
  auto la = a.Query(0.2), lb = b.Query(0.2);
  ASSERT_EQ(la.size(), lb.size());
  for (size_t i = 0; i < la.size(); ++i) {
    EXPECT_TRUE(la[i].prefix == lb[i].prefix);
    EXPECT_DOUBLE_EQ(la[i].estimate, lb[i].estimate);
  }
}

// ---------------------------------------------------------------- BernHhh --

TEST(BernHhhTest, FindsHeavyPrefixThroughSampling) {
  Hierarchy h = Hierarchy::Bytes(16);
  int found = 0;
  for (int trial = 0; trial < 5; ++trial) {
    wbs::RandomTape tape(3300 + trial);
    const uint64_t m = 40000;
    BernHhh alg(h, 1 << 16, m, 0.1, 0.05, &tape);
    for (uint64_t i = 0; i < m; ++i) {
      uint64_t item = (i % 5 < 2) ? 0xCD00 + (i % 16)
                                  : (i * 2654435761ULL) % 0x8000;
      alg.Add(item);
    }
    for (const auto& e : alg.Query(0.2)) {
      if (e.prefix.level == 1 && e.prefix.value == 0xCD) ++found;
    }
  }
  EXPECT_GE(found, 4);
}

TEST(BernHhhTest, EstimatesRescaledToStream) {
  wbs::RandomTape tape(34);
  Hierarchy h = Hierarchy::Binary(16);
  const uint64_t m = 30000;
  BernHhh alg(h, 16, m, 0.2, 0.1, &tape);
  for (uint64_t i = 0; i < m; ++i) alg.Add(3);
  HhhList out = alg.Query(0.5);
  ASSERT_FALSE(out.empty());
  // The leaf (or an ancestor) carries an estimate near m, not near the
  // sampled count.
  double max_est = 0;
  for (const auto& e : out) max_est = std::max(max_est, e.estimate);
  EXPECT_NEAR(max_est, double(m), 0.3 * double(m));
}

// --------------------------------------------------------------- RobustHhh --

TEST(RobustHhhTest, FindsPlantedPrefixAcrossScales) {
  Hierarchy h = Hierarchy::Bytes(16);
  for (uint64_t m : {5000u, 50000u}) {
    int found = 0;
    for (int trial = 0; trial < 3; ++trial) {
      wbs::RandomTape tape(m + trial);
      RobustHhh alg(h, 1 << 16, 0.1, 0.25, 0.25, &tape);
      for (uint64_t i = 0; i < m; ++i) {
        uint64_t item = (i % 2 == 0) ? 0xEE00 + (i % 8)
                                     : (i * 2654435761ULL) % 0x8000;
        ASSERT_TRUE(alg.Update({item}).ok());
      }
      for (const auto& e : alg.Query()) {
        if (e.prefix.level == 1 && e.prefix.value == 0xEE) ++found;
      }
    }
    EXPECT_GE(found, 2) << "m=" << m;
  }
}

TEST(RobustHhhTest, SpaceFlatInMWhileTms12Grows) {
  // Theorem 2.14 vs Theorem 2.11: the deterministic summary's counters grow
  // with m (log m bits per counter per level) while the robust algorithm's
  // counters hold m-independent sampled counts. Compare the growth.
  Hierarchy h = Hierarchy::Bytes(16);
  const double eps = 0.1;
  auto run_robust = [&](uint64_t m) {
    wbs::RandomTape tape(36);
    RobustHhh robust(h, 1 << 16, eps, 0.25, 0.25, &tape);
    for (uint64_t i = 0; i < m; ++i) {
      EXPECT_TRUE(robust.Update({i % 5}).ok());  // concentrated stream
    }
    return robust.SpaceBits();
  };
  auto run_det = [&](uint64_t m) {
    Tms12Hhh det(h, eps);
    for (uint64_t i = 0; i < m; ++i) det.Add(i % 5);
    return det.SpaceBits();
  };
  const uint64_t m1 = 1 << 12, m2 = 1 << 20;  // 256x
  uint64_t r1 = run_robust(m1), r2 = run_robust(m2);
  uint64_t robust_growth = r2 > r1 ? r2 - r1 : 0;
  uint64_t det_growth = run_det(m2) - run_det(m1);
  // det: (h+1) levels x 5 counters x ~8 bits each = ~100+ bits of growth.
  EXPECT_GE(det_growth, 40u);
  EXPECT_LE(robust_growth, det_growth / 2);
}

TEST(RobustHhhTest, RejectsOutOfUniverse) {
  Hierarchy h = Hierarchy::Binary(64);
  wbs::RandomTape tape(37);
  RobustHhh alg(h, 64, 0.2, 0.3, 0.25, &tape);
  EXPECT_FALSE(alg.Update({64}).ok());
}

TEST(RobustHhhTest, GuessRotationAdvances) {
  Hierarchy h = Hierarchy::Binary(16);
  wbs::RandomTape tape(38);
  RobustHhh alg(h, 16, 0.25, 0.3, 0.25, &tape);  // base 64
  for (int i = 0; i < 100000; ++i) ASSERT_TRUE(alg.Update({1}).ok());
  EXPECT_GE(alg.active_guess_exponent(), 2);
}

}  // namespace
}  // namespace wbs::hhh
