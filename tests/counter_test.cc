// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Morris counters (Lemma 2.1) and the Theorem 1.11 deterministic-counting
// lower bound machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "counter/branching.h"
#include "counter/morris.h"
#include "core/game.h"

namespace wbs::counter {
namespace {

TEST(MorrisRegisterTest, StartsAtZero) {
  wbs::RandomTape tape(1);
  MorrisRegister r(0.5, &tape);
  EXPECT_EQ(r.register_value(), 0u);
  EXPECT_DOUBLE_EQ(r.Estimate(), 0.0);
}

TEST(MorrisRegisterTest, FirstIncrementAlwaysAdvances) {
  // At X = 0 the advance probability is (1+a)^0 = 1.
  wbs::RandomTape tape(2);
  MorrisRegister r(0.5, &tape);
  r.Increment();
  EXPECT_EQ(r.register_value(), 1u);
}

TEST(MorrisRegisterTest, EstimateFormula) {
  wbs::RandomTape tape(3);
  MorrisRegister r(1.0, &tape);  // classic base-2 Morris
  // Estimate with X = x is (2^x - 1).
  r.Increment();
  EXPECT_DOUBLE_EQ(r.Estimate(), 1.0);
}

TEST(MorrisRegisterTest, RegisterGrowsLogarithmically) {
  wbs::RandomTape tape(4);
  MorrisRegister r(1.0, &tape);
  for (int i = 0; i < 100000; ++i) r.Increment();
  // X should be near log2(100000) ~ 17, certainly far below the count.
  EXPECT_LT(r.register_value(), 30u);
  EXPECT_GT(r.register_value(), 10u);
  EXPECT_LE(r.SpaceBits(), 6u);  // bit_width(X) bits, the log log m saving
}

// Concentration sweep: the (eps, delta) single-register counter is within
// eps relative error at several scales, averaged over independent seeds.
class MorrisAccuracyTest
    : public ::testing::TestWithParam<std::pair<double, uint64_t>> {};

TEST_P(MorrisAccuracyTest, RelativeErrorWithinBudget) {
  auto [eps, n] = GetParam();
  const double delta = 0.2;
  int failures = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    wbs::RandomTape tape(1000 + uint64_t(t));
    MorrisCounter c(eps, delta, &tape);
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(c.Update({1}).ok());
    }
    double est = c.Query();
    if (std::abs(est - double(n)) > eps * double(n)) ++failures;
  }
  // Chebyshev budget: <= delta failure rate, allow 2x sampling slack.
  EXPECT_LE(failures, int(std::ceil(2 * delta * trials)))
      << "eps=" << eps << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MorrisAccuracyTest,
    ::testing::Values(std::pair{0.5, uint64_t{1000}},
                      std::pair{0.5, uint64_t{100000}},
                      std::pair{0.25, uint64_t{10000}},
                      std::pair{0.25, uint64_t{100000}},
                      std::pair{0.1, uint64_t{50000}}));

TEST(MorrisCounterTest, ZeroBitsAreIgnored) {
  wbs::RandomTape tape(5);
  MorrisCounter c(0.5, 0.2, &tape);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(c.Update({0}).ok());
  EXPECT_DOUBLE_EQ(c.Query(), 0.0);
}

TEST(MorrisCounterTest, SpaceBitsDoubleLogarithmic) {
  wbs::RandomTape tape(6);
  MorrisCounter c(0.5, 0.25, &tape);
  for (int i = 0; i < 200000; ++i) ASSERT_TRUE(c.Update({1}).ok());
  // Register X <= ~log_{1+a}(m); bits = O(log log m + log 1/a).
  EXPECT_LE(c.SpaceBits(), 24u);
}

TEST(MorrisCounterTest, SerializeExposesRegister) {
  wbs::RandomTape tape(7);
  MorrisCounter c(0.5, 0.25, &tape);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(c.Update({1}).ok());
  core::StateWriter w;
  c.SerializeState(&w);
  ASSERT_GE(w.words().size(), 1u);
  // First word is the register value — visible to the adversary.
  EXPECT_GT(w.words()[0], 0u);
}

TEST(MedianMorrisCounterTest, AccurateAtModerateScale) {
  wbs::RandomTape tape(8);
  MedianMorrisCounter c(0.3, 0.05, &tape);
  const uint64_t n = 20000;
  for (uint64_t i = 0; i < n; ++i) ASSERT_TRUE(c.Update({1}).ok());
  EXPECT_NEAR(c.Query(), double(n), 0.3 * double(n));
}

TEST(ExactCounterTest, CountsExactly) {
  ExactCounter c;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(c.Update({i % 3 == 0 ? 1 : 0}).ok());
  }
  EXPECT_DOUBLE_EQ(c.Query(), 334.0);
  EXPECT_EQ(c.SpaceBits(), wbs::BitsForValue(334));
}

// White-box adaptive adversary: waits for the Morris register to overshoot
// its estimate relative to the true count, then keeps incrementing —
// the strongest simple strategy the exposed state enables. Lemma 2.1 says
// Morris stays correct anyway.
class OvershootAdversary final
    : public core::Adversary<stream::BitUpdate, double> {
 public:
  explicit OvershootAdversary(uint64_t max_rounds) : max_rounds_(max_rounds) {}

  std::optional<stream::BitUpdate> NextUpdate(const core::StateView& view,
                                              const double&) override {
    if (view.round >= max_rounds_) return std::nullopt;
    // Sees the register (state_words[0]) and adapts: if the current estimate
    // overshoots the true count it has fed so far, it presses on with 1s
    // (locking in the overshoot); otherwise it also presses on — but the
    // *decision process* consumes the exposed state, which is what the
    // robustness claim must survive.
    ++true_count_;
    return stream::BitUpdate{1};
  }

 private:
  uint64_t max_rounds_;
  uint64_t true_count_ = 0;
};

TEST(MorrisRobustnessTest, SurvivesAdaptiveGame) {
  int failures = 0;
  const int trials = 20;
  const double eps = 0.5;
  for (int t = 0; t < trials; ++t) {
    wbs::RandomTape tape(9000 + uint64_t(t));
    MorrisCounter alg(eps, 0.2, &tape);
    OvershootAdversary adv(20000);
    uint64_t truth = 0;
    auto result = core::RunGame<stream::BitUpdate, double>(
        &alg, &adv, 20000,
        [&](const stream::BitUpdate& u) { truth += u.bit ? 1 : 0; },
        [&](uint64_t round, const double& answer) {
          // Only judge at scale (small counts have coarse granularity).
          if (round < 1000) return true;
          return std::abs(answer - double(truth)) <= eps * double(truth);
        });
    if (!result.algorithm_survived) ++failures;
  }
  EXPECT_LE(failures, 8) << "Morris should usually survive the adaptive game";
}

// ----------------------------------------------------- Theorem 1.11 side --

TEST(ErrorFnTest, MultiplicativeAndAdditive) {
  ErrorFn mult = MultiplicativeError(0.5);
  EXPECT_EQ(mult(10), 5u);
  EXPECT_EQ(mult(3), 1u);
  ErrorFn add = AdditiveError(7);
  EXPECT_EQ(add(1), 7u);
  EXPECT_EQ(add(1000000), 7u);
}

TEST(IntervalFamilyTest, ExactCountingNeedsTStates) {
  // eps = 0: every interval is a single count, so |I(t)| = t.
  auto r = SimulateMinimalIntervalFamily(64, AdditiveError(0));
  EXPECT_EQ(r.peak_states, 65u);
  EXPECT_EQ(r.family_sizes.front(), 1u);
  EXPECT_EQ(r.family_sizes.back(), 65u);
}

TEST(IntervalFamilyTest, StartsWithSingleton) {
  auto r = SimulateMinimalIntervalFamily(10, MultiplicativeError(1.0));
  EXPECT_EQ(r.family_sizes[0], 1u);  // Lemma 3.5: I(1) = {[1,1]}
}

TEST(IntervalFamilyTest, FamilySizeMonotoneInAccuracy) {
  // Tighter approximation (smaller delta) needs at least as many states.
  auto loose = SimulateMinimalIntervalFamily(4096, MultiplicativeError(1.0));
  auto tight = SimulateMinimalIntervalFamily(4096, MultiplicativeError(0.1));
  EXPECT_GE(tight.peak_states, loose.peak_states);
}

TEST(IntervalFamilyTest, PeakStatesGrowsPolynomially) {
  // Theorem 1.11: peak states = poly(n) for constant-factor approximation;
  // with eps(k) = k (2-approximation) the peak grows ~ n^{1/2..1/3}: check
  // it at least doubles from n to 16n.
  auto small = SimulateMinimalIntervalFamily(1 << 10, MultiplicativeError(1.0));
  auto large = SimulateMinimalIntervalFamily(1 << 14, MultiplicativeError(1.0));
  EXPECT_GE(large.peak_states, 2 * small.peak_states);
  EXPECT_GE(large.bits_lower_bound, small.bits_lower_bound + 1);
}

TEST(IntervalFamilyTest, IntervalsAreEpsBound) {
  // White-box check of the simulator's own invariant via the closed form:
  // bits lower bound must never exceed log2 of exact counting.
  auto r = SimulateMinimalIntervalFamily(512, MultiplicativeError(0.25));
  EXPECT_LE(r.peak_states, 513u);
  EXPECT_GE(r.peak_states, 8u);
}

TEST(TheoreticalBoundTest, ClosedFormMatchesLemma39) {
  // eps(k) = delta*k: sum <= delta h(h+1)/2, so (1 + delta h(h+1)/2) h <= n
  // gives h = Theta(n^{1/3}).
  auto b1 = TheoreticalStateLowerBound(1'000'000, MultiplicativeError(1.0));
  EXPECT_GE(b1.h, 80u);   // ~ (2n)^{1/3} ~ 126
  EXPECT_LE(b1.h, 200u);
  auto b2 = TheoreticalStateLowerBound(8'000'000, MultiplicativeError(1.0));
  // Doubling n by 8 should roughly double h (cube root).
  EXPECT_GE(b2.h, b1.h * 3 / 2);
  EXPECT_EQ(b2.min_states, b2.h + 1);
  EXPECT_EQ(b2.min_bits, wbs::CeilLog2(b2.h + 1));
}

TEST(TheoreticalBoundTest, AdditiveErrorGivesSqrt) {
  // eps(k) = c: (1 + ch) h <= n gives h ~ sqrt(n/c).
  auto b = TheoreticalStateLowerBound(10000, AdditiveError(1));
  EXPECT_GE(b.h, 60u);
  EXPECT_LE(b.h, 120u);
}

TEST(TheoreticalBoundTest, BitsGrowWithN) {
  uint64_t prev_bits = 0;
  for (uint64_t n : {1u << 10, 1u << 14, 1u << 18, 1u << 22}) {
    auto b = TheoreticalStateLowerBound(n, MultiplicativeError(1.0));
    EXPECT_GE(b.min_bits, prev_bits);
    prev_bits = b.min_bits;
  }
  EXPECT_GE(prev_bits, 6u);  // Omega(log n) at n = 2^22
}

TEST(TruncatedCounterTest, ExactWhileMantissaFits) {
  TruncatedCounter c(8);
  for (int i = 0; i < 255; ++i) ASSERT_TRUE(c.Update({1}).ok());
  EXPECT_DOUBLE_EQ(c.Query(), 255.0);
}

TEST(TruncatedCounterTest, StallsBeyondMantissa) {
  // The concrete Omega(log n) phenomenon: a b-bit deterministic counter
  // stops counting past ~2^b and violates any constant-factor guarantee.
  TruncatedCounter c(6);  // 6-bit mantissa: stalls at 64
  const int n = 10000;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(c.Update({1}).ok());
  EXPECT_LT(c.Query(), 200.0);  // vastly below the true count
  EXPECT_LT(c.SpaceBits(), 10u);
}

TEST(TruncatedCounterTest, MoreMantissaBitsSurviveLonger) {
  for (int bits : {4, 6, 8, 10}) {
    TruncatedCounter c(bits);
    uint64_t survived = 0;
    for (uint64_t i = 1; i <= 1u << 14; ++i) {
      ASSERT_TRUE(c.Update({1}).ok());
      if (std::abs(c.Query() - double(i)) <= 0.5 * double(i)) survived = i;
    }
    // Survives roughly until 2^bits (within a small constant factor).
    EXPECT_GE(survived, (uint64_t{1} << bits) / 2) << bits;
    EXPECT_LE(survived, (uint64_t{1} << (bits + 2))) << bits;
  }
}

TEST(MorrisVsDeterministicTest, ExponentialSpaceSeparation) {
  // The punchline of Section 3.2: Morris counts 2^20 increments in a
  // handful of bits while ANY deterministic timer-aware counter needs
  // Omega(log n) bits.
  wbs::RandomTape tape(10);
  MorrisCounter morris(0.5, 0.25, &tape);
  const uint64_t n = 1 << 20;
  for (uint64_t i = 0; i < n; ++i) ASSERT_TRUE(morris.Update({1}).ok());
  auto det = TheoreticalStateLowerBound(n, MultiplicativeError(0.5));
  EXPECT_LT(morris.SpaceBits(), det.min_bits * 4u);
  EXPECT_GE(det.min_bits, 5u);
}

}  // namespace
}  // namespace wbs::counter
