// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Collision-resistant hash functions: the discrete-log streaming fingerprint
// of Theorem 2.5 / Section 2.6 (incremental evaluation, concatenation and
// prefix-removal identities), the Pedersen CRHF, and the truncated-SHA CRHF
// used by Theorems 1.2/1.3.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/bits.h"
#include "common/modmath.h"
#include "common/random.h"
#include "crypto/crhf.h"

namespace wbs::crypto {
namespace {

DlogParams TestParams(int bits = 30, uint64_t seed = 1) {
  wbs::RandomTape tape(seed);
  return DlogParams::Generate(bits, &tape);
}

TEST(DlogParamsTest, SafePrimeAndGenerator) {
  DlogParams p = TestParams();
  EXPECT_TRUE(wbs::IsPrime(p.p));
  EXPECT_TRUE(wbs::IsPrime(p.q));
  EXPECT_EQ(p.p, 2 * p.q + 1);
  EXPECT_EQ(PowMod(p.g, p.q, p.p), 1u);  // g lies in the order-q subgroup
  EXPECT_NE(p.g, 1u);
}

TEST(DlogParamsTest, ElementBitsMatchesModulus) {
  DlogParams p = TestParams(30);
  EXPECT_EQ(p.ElementBits(), wbs::BitsForValue(p.p));
  EXPECT_EQ(p.ElementBits(), 30u);
}

TEST(DlogFingerprintTest, EmptyIsIdentity) {
  DlogFingerprint f(TestParams());
  EXPECT_EQ(f.value(), 1u);
  EXPECT_EQ(f.length_bits(), 0u);
}

TEST(DlogFingerprintTest, SingleBitIsGPower) {
  DlogParams p = TestParams();
  DlogFingerprint f0(p), f1(p);
  f0.AppendBit(0);
  f1.AppendBit(1);
  EXPECT_EQ(f0.value(), 1u);        // g^0
  EXPECT_EQ(f1.value(), p.g % p.p); // g^1
}

TEST(DlogFingerprintTest, ValueIsGToTheInteger) {
  // h(U) = g^U where U is the bit string read as a big-endian integer.
  DlogParams p = TestParams();
  const uint64_t u = 0b110101;
  DlogFingerprint f(p);
  for (int i = 5; i >= 0; --i) f.AppendBit(int((u >> i) & 1));
  EXPECT_EQ(f.value(), PowMod(p.g, u, p.p));
  EXPECT_EQ(f.length_bits(), 6u);
}

TEST(DlogFingerprintTest, AppendCharMatchesBitByBit) {
  DlogParams p = TestParams();
  DlogFingerprint by_char(p), by_bit(p);
  by_char.AppendChar('z', 8);
  for (int i = 7; i >= 0; --i) by_bit.AppendBit(('z' >> i) & 1);
  EXPECT_EQ(by_char.value(), by_bit.value());
  EXPECT_EQ(by_char.length_bits(), 8u);
}

TEST(DlogFingerprintTest, EqualStringsEqualPrints) {
  DlogParams p = TestParams();
  wbs::RandomTape tape(3);
  for (int trial = 0; trial < 20; ++trial) {
    DlogFingerprint a(p), b(p);
    for (int i = 0; i < 40; ++i) {
      int bit = int(tape.NextWord() & 1);
      a.AppendBit(bit);
      b.AppendBit(bit);
    }
    EXPECT_EQ(a.value(), b.value());
  }
}

TEST(DlogFingerprintTest, DistinctShortStringsDistinctPrints) {
  // For strings shorter than log2(q) bits the map U -> g^U is injective, so
  // distinct strings give distinct prints unconditionally.
  DlogParams p = TestParams();
  std::set<uint64_t> prints;
  for (uint64_t u = 0; u < 256; ++u) {
    DlogFingerprint f(p);
    for (int i = 7; i >= 0; --i) f.AppendBit(int((u >> i) & 1));
    prints.insert(f.value());
  }
  EXPECT_EQ(prints.size(), 256u);
}

// Property sweep: the concatenation identity h(U ∘ V) from (h(U), h(V), |V|)
// over random strings of several lengths.
class ConcatIdentityTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ConcatIdentityTest, ConcatMatchesDirect) {
  auto [len_u, len_v] = GetParam();
  DlogParams p = TestParams();
  wbs::RandomTape tape(uint64_t(len_u * 1000 + len_v));
  DlogFingerprint fu(p), fv(p), fuv(p);
  for (int i = 0; i < len_u; ++i) {
    int b = int(tape.NextWord() & 1);
    fu.AppendBit(b);
    fuv.AppendBit(b);
  }
  for (int i = 0; i < len_v; ++i) {
    int b = int(tape.NextWord() & 1);
    fv.AppendBit(b);
    fuv.AppendBit(b);
  }
  EXPECT_EQ(DlogFingerprint::Concat(p, fu.value(), fv.value(),
                                    uint64_t(len_v)),
            fuv.value());
}

TEST_P(ConcatIdentityTest, RemovePrefixInvertsConcat) {
  auto [len_u, len_v] = GetParam();
  DlogParams p = TestParams();
  wbs::RandomTape tape(uint64_t(len_u * 977 + len_v));
  DlogFingerprint fu(p), fv(p), fuv(p);
  for (int i = 0; i < len_u; ++i) {
    int b = int(tape.NextWord() & 1);
    fu.AppendBit(b);
    fuv.AppendBit(b);
  }
  for (int i = 0; i < len_v; ++i) {
    int b = int(tape.NextWord() & 1);
    fv.AppendBit(b);
    fuv.AppendBit(b);
  }
  EXPECT_EQ(DlogFingerprint::RemovePrefix(p, fuv.value(), fu.value(),
                                          uint64_t(len_v)),
            fv.value());
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, ConcatIdentityTest,
    ::testing::Values(std::pair{0, 1}, std::pair{1, 0}, std::pair{1, 1},
                      std::pair{8, 8}, std::pair{17, 5}, std::pair{5, 64},
                      std::pair{64, 64}, std::pair{100, 37}));

TEST(DlogFingerprintTest, SpaceBitsIsOneElementPlusLength) {
  DlogParams p = TestParams();
  DlogFingerprint f(p);
  for (int i = 0; i < 100; ++i) f.AppendBit(1);
  EXPECT_EQ(f.SpaceBits(), p.ElementBits() + wbs::BitsForValue(100));
}

TEST(PedersenHashTest, DeterministicAndInGroup) {
  DlogParams p = TestParams();
  wbs::RandomTape tape(5);
  PedersenHash ph = PedersenHash::Generate(p, &tape);
  uint64_t h1 = ph.Hash(123, 456);
  EXPECT_EQ(h1, ph.Hash(123, 456));
  EXPECT_LT(h1, p.p);
  EXPECT_EQ(PowMod(h1, p.q, p.p), 1u);  // lands in the QR subgroup
}

TEST(PedersenHashTest, CollisionYieldsDiscreteLog) {
  // If h(x0,y0) == h(x1,y1) with (x0,y0) != (x1,y1) then
  // log_g(h) = (x0-x1)/(y1-y0) mod q. We verify the algebra by planting a
  // collision using a KNOWN exponent s (an attacker without s cannot do
  // this — that is the assumption).
  DlogParams p = TestParams();
  const uint64_t s = 98765 % p.q;
  PedersenHash ph(p, PowMod(p.g, s, p.p));
  // h(x, y) = g^{x + s y}; pick (x0,y0) and (x1,y1) with x0+s*y0 = x1+s*y1.
  uint64_t x0 = 11, y0 = 22, y1 = 23;
  uint64_t x1 = SubMod(AddMod(x0, MulMod(s, y0, p.q), p.q),
                       MulMod(s, y1, p.q), p.q);
  ASSERT_EQ(ph.Hash(x0, y0), ph.Hash(x1, y1));
  // Recover s from the collision:
  uint64_t num = SubMod(x0, x1, p.q);
  uint64_t den = SubMod(y1, y0, p.q);
  EXPECT_EQ(MulMod(num, InvMod(den, p.q), p.q), s);
}

TEST(PedersenHashTest, HashVectorLengthBound) {
  DlogParams p = TestParams();
  wbs::RandomTape tape(6);
  PedersenHash ph = PedersenHash::Generate(p, &tape);
  std::vector<uint64_t> v = {1, 2, 3};
  uint64_t h = ph.HashVector(v);
  EXPECT_LT(h, p.q);
  EXPECT_EQ(h, ph.HashVector(v));
  // Order and length sensitivity.
  EXPECT_NE(h, ph.HashVector({3, 2, 1}));
  EXPECT_NE(h, ph.HashVector({1, 2, 3, 0}));
  EXPECT_NE(h, ph.HashVector({1, 2}));
}

TEST(Sha256CrhfTest, WidthAndDeterminism) {
  for (int bits : {8, 16, 33, 64}) {
    Sha256Crhf h(99, bits);
    uint64_t v = h.HashU64(12345);
    EXPECT_EQ(v, h.HashU64(12345));
    if (bits < 64) {
      EXPECT_LT(v, uint64_t{1} << bits);
    }
  }
}

TEST(Sha256CrhfTest, SaltSeparates) {
  Sha256Crhf a(1, 32), b(2, 32);
  EXPECT_NE(a.HashU64(7), b.HashU64(7));
}

TEST(Sha256CrhfTest, VectorHashOrderSensitive) {
  Sha256Crhf h(3, 48);
  EXPECT_NE(h.HashU64s({1, 2, 3}), h.HashU64s({3, 2, 1}));
  EXPECT_NE(h.HashU64s({1, 2}), h.HashU64s({1, 2, 0}));
  EXPECT_EQ(h.HashU64s({5, 6}), h.HashU64s({5, 6}));
}

TEST(Sha256CrhfTest, NoCollisionsAmongManyInputs) {
  Sha256Crhf h(4, 64);
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 5000; ++i) seen.insert(h.HashU64(i));
  EXPECT_EQ(seen.size(), 5000u);
}

TEST(Sha256CrhfTest, OutputBitsForBudgetRule) {
  // 2 log2(T) + log2(items) + slack, clamped to [8, 64].
  EXPECT_EQ(Sha256Crhf::OutputBitsForBudget(1 << 10, 1 << 4, 10),
            2 * 10 + 4 + 10);
  EXPECT_EQ(Sha256Crhf::OutputBitsForBudget(uint64_t{1} << 40, 1 << 20, 10),
            64);  // clamped high
  EXPECT_EQ(Sha256Crhf::OutputBitsForBudget(1, 1, 0), 8);  // clamped low
}

TEST(Sha256CrhfTest, BirthdaySearchWithinWidthFindsCollisionOnlySlowly) {
  // A tiny 16-bit CRHF *can* be collided by a ~2^8-work birthday search —
  // demonstrating that the width rule (2 log T) is what rules the attack
  // out for real budgets.
  Sha256Crhf h(5, 16);
  std::set<uint64_t> seen;
  uint64_t tries = 0;
  bool collided = false;
  for (uint64_t i = 0; i < (1 << 16); ++i) {
    ++tries;
    if (!seen.insert(h.HashU64(i)).second) {
      collided = true;
      break;
    }
  }
  EXPECT_TRUE(collided);
  EXPECT_GT(tries, 1u << 5);  // but not immediately: needs ~sqrt(2^16) work
}

}  // namespace
}  // namespace wbs::crypto
