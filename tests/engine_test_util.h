// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Shared helpers for the engine test suites: Client construction with
// EXPECT-checked creation (and an environment-selected shard backend, so CI
// can run every engine suite once per backend — inprocess, loopback, or
// mixed placement), and materialized-stream replay through the ticketed
// Submit surface.
//
// Topology churn mode: WBS_ENGINE_TOPOLOGY=churn makes every multi-batch
// Replay() perform a live MoveShard(0) handoff halfway through the stream.
// Every suite must still pass — the handoff transfers serialized state
// exactly, so answers are preserved (custom sketches without a wire format
// surface Unimplemented, which churn mode treats as "skip the move").

#ifndef WBS_TESTS_ENGINE_TEST_UTIL_H_
#define WBS_TESTS_ENGINE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/client.h"
#include "engine/remote_backend.h"
#include "stream/updates.h"

namespace wbs::engine {

/// The backend the suite runs against by default: WBS_ENGINE_BACKEND=
/// inprocess (default) | loopback. CI sets the variable to run the engine
/// suites once per backend; a bad value fails loudly instead of silently
/// testing the default.
inline BackendFactory BackendFactoryFromEnv() {
  const char* env = std::getenv("WBS_ENGINE_BACKEND");
  auto factory = BackendFactoryByName(env == nullptr ? "" : env);
  EXPECT_TRUE(factory.ok()) << factory.status().ToString();
  return factory.ok() ? std::move(factory).value() : BackendFactory{};
}

/// `backend` overrides the environment selection (used by the explicit
/// cross-backend equivalence suites); leave empty to follow the env var.
inline std::unique_ptr<Client> MakeClient(std::vector<std::string> sketches,
                                          const SketchConfig& cfg,
                                          size_t shards, size_t threads,
                                          BackendFactory backend = {}) {
  ClientOptions opts;
  opts.ingest.num_shards = shards;
  opts.ingest.num_threads = threads;
  opts.ingest.sketches = std::move(sketches);
  opts.ingest.config = cfg;
  opts.ingest.backend =
      backend ? std::move(backend) : BackendFactoryFromEnv();
  auto client = Client::Create(opts);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

/// Whether WBS_ENGINE_TOPOLOGY=churn is active (CI runs the engine suites
/// once with it, so every test path also survives a mid-stream handoff).
inline bool TopologyChurnEnabled() {
  const char* env = std::getenv("WBS_ENGINE_TOPOLOGY");
  return env != nullptr && std::string(env) == "churn";
}

/// Tests whose assertions are incompatible with an injected topology op
/// (e.g. they pin the snapshot throttle's "nothing published yet" state,
/// which a handoff's publish would break) opt out explicitly.
enum class ReplayChurn { kAuto, kDisabled };

/// The churn-mode injection: a live handoff of shard 0 into a fresh
/// in-process cell at a deterministic batch boundary. Unimplemented means
/// a configured sketch has no wire format — the move is skipped, matching
/// the engine's own behavior (topology unchanged on failure).
inline Status MaybeChurnTopology(Client* client) {
  Status s = client->MoveShard(0, InProcessBackendFactory());
  if (!s.ok() && s.code() != Status::Code::kUnimplemented) return s;
  return Status::OK();
}

inline Status Replay(Client* client, const stream::TurnstileStream& s,
                     size_t batch = 1024,
                     ReplayChurn churn = ReplayChurn::kAuto) {
  const size_t batches = s.empty() ? 0 : (s.size() + batch - 1) / batch;
  const bool inject = churn == ReplayChurn::kAuto && batches >= 2 &&
                      TopologyChurnEnabled();
  size_t index = 0;
  for (size_t off = 0; off < s.size(); off += batch, ++index) {
    if (inject && index == batches / 2) {
      if (Status cs = MaybeChurnTopology(client); !cs.ok()) return cs;
    }
    auto t = client->Submit(s.data() + off, std::min(batch, s.size() - off));
    if (!t.ok()) return t.status();
  }
  return Status::OK();
}

inline Status Replay(Client* client, const stream::ItemStream& s,
                     size_t batch = 1024,
                     ReplayChurn churn = ReplayChurn::kAuto) {
  const size_t batches = s.empty() ? 0 : (s.size() + batch - 1) / batch;
  const bool inject = churn == ReplayChurn::kAuto && batches >= 2 &&
                      TopologyChurnEnabled();
  size_t index = 0;
  for (size_t off = 0; off < s.size(); off += batch, ++index) {
    if (inject && index == batches / 2) {
      if (Status cs = MaybeChurnTopology(client); !cs.ok()) return cs;
    }
    auto t =
        client->SubmitItems(s.data() + off, std::min(batch, s.size() - off));
    if (!t.ok()) return t.status();
  }
  return Status::OK();
}

}  // namespace wbs::engine

#endif  // WBS_TESTS_ENGINE_TEST_UTIL_H_
