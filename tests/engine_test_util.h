// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Shared helpers for the engine test suites: Client construction with
// EXPECT-checked creation (and an environment-selected shard backend, so CI
// can run every engine suite once per backend — inprocess, loopback, or
// mixed placement), and materialized-stream replay through the ticketed
// Submit surface.
//
// Topology churn mode: WBS_ENGINE_TOPOLOGY=churn makes every multi-batch
// Replay() perform a live MoveShard(0) handoff halfway through the stream.
// Every suite must still pass — the handoff transfers serialized state
// exactly, so answers are preserved (custom sketches without a wire format
// surface Unimplemented, which churn mode treats as "skip the move").
//
// Crash replay mode: WBS_ENGINE_CRASH=replay makes every multi-batch
// Replay() run a FailoverDrill(0) — checkpoint, crash injection, and
// MoveShard-based recovery at one barrier — three quarters of the way
// through the stream, with heartbeat supervision enabled on every client.
// The drill is provably loss-free, so every suite's answers must still be
// exact (in-process placements cannot crash; the drill's Unimplemented is
// treated as "skip", mirroring churn mode).

#ifndef WBS_TESTS_ENGINE_TEST_UTIL_H_
#define WBS_TESTS_ENGINE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/client.h"
#include "engine/remote_backend.h"
#include "stream/updates.h"

namespace wbs::engine {

/// The backend the suite runs against by default: WBS_ENGINE_BACKEND=
/// inprocess (default) | loopback. CI sets the variable to run the engine
/// suites once per backend; a bad value fails loudly instead of silently
/// testing the default.
inline BackendFactory BackendFactoryFromEnv() {
  const char* env = std::getenv("WBS_ENGINE_BACKEND");
  auto factory = BackendFactoryByName(env == nullptr ? "" : env);
  EXPECT_TRUE(factory.ok()) << factory.status().ToString();
  return factory.ok() ? std::move(factory).value() : BackendFactory{};
}

/// Whether WBS_ENGINE_CRASH=replay is active (CI runs the engine suites
/// once with it against the loopback backend, so every test path also
/// survives a checkpoint + crash + recovery cycle). Values of the form
/// "after=N[,torn]" arm the ShardServer directly and are not replay mode.
inline bool CrashReplayEnabled() {
  const char* env = std::getenv("WBS_ENGINE_CRASH");
  return env != nullptr && std::string(env) == "replay";
}

/// `backend` overrides the environment selection (used by the explicit
/// cross-backend equivalence suites); leave empty to follow the env var.
inline std::unique_ptr<Client> MakeClient(std::vector<std::string> sketches,
                                          const SketchConfig& cfg,
                                          size_t shards, size_t threads,
                                          BackendFactory backend = {}) {
  ClientOptions opts;
  opts.ingest.num_shards = shards;
  opts.ingest.num_threads = threads;
  opts.ingest.sketches = std::move(sketches);
  opts.ingest.config = cfg;
  opts.ingest.backend =
      backend ? std::move(backend) : BackendFactoryFromEnv();
  if (CrashReplayEnabled()) {
    // Supervision on everywhere in crash-replay mode: shard failures must
    // degrade (drop + recover) rather than poison, and the supervisor's
    // probes must never perturb a healthy run's answers.
    opts.ingest.failover.heartbeat_interval_ms = 20;
    opts.ingest.failover.heartbeat_timeout_ms = 100;
  }
  auto client = Client::Create(opts);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

/// Whether WBS_ENGINE_TOPOLOGY=churn is active (CI runs the engine suites
/// once with it, so every test path also survives a mid-stream handoff).
inline bool TopologyChurnEnabled() {
  const char* env = std::getenv("WBS_ENGINE_TOPOLOGY");
  return env != nullptr && std::string(env) == "churn";
}

/// Tests whose assertions are incompatible with an injected topology op
/// (e.g. they pin the snapshot throttle's "nothing published yet" state,
/// which a handoff's publish would break) opt out explicitly.
enum class ReplayChurn { kAuto, kDisabled };

/// The churn-mode injection: a live handoff of shard 0 into a fresh
/// in-process cell at a deterministic batch boundary. Unimplemented means
/// a configured sketch has no wire format — the move is skipped, matching
/// the engine's own behavior (topology unchanged on failure).
inline Status MaybeChurnTopology(Client* client) {
  Status s = client->MoveShard(0, InProcessBackendFactory());
  if (!s.ok() && s.code() != Status::Code::kUnimplemented) return s;
  return Status::OK();
}

/// The crash-replay injection: one loss-free FailoverDrill of shard 0
/// (checkpoint + crash + recover at a single barrier), re-homing into the
/// env-selected backend so placement stays homogeneous. Unimplemented means
/// the placement cannot crash (in-process) — skipped, like churn mode.
inline Status MaybeCrashShard(Client* client) {
  Status s = client->FailoverDrill(0, /*torn=*/false, BackendFactoryFromEnv());
  if (!s.ok() && s.code() != Status::Code::kUnimplemented) return s;
  return Status::OK();
}

inline Status Replay(Client* client, const stream::TurnstileStream& s,
                     size_t batch = 1024,
                     ReplayChurn churn = ReplayChurn::kAuto) {
  const size_t batches = s.empty() ? 0 : (s.size() + batch - 1) / batch;
  const bool inject = churn == ReplayChurn::kAuto && batches >= 2 &&
                      TopologyChurnEnabled();
  const bool crash = churn == ReplayChurn::kAuto && batches >= 2 &&
                     CrashReplayEnabled();
  size_t index = 0;
  for (size_t off = 0; off < s.size(); off += batch, ++index) {
    if (inject && index == batches / 2) {
      if (Status cs = MaybeChurnTopology(client); !cs.ok()) return cs;
    }
    if (crash && index == (batches * 3) / 4) {
      if (Status cs = MaybeCrashShard(client); !cs.ok()) return cs;
    }
    auto t = client->Submit(s.data() + off, std::min(batch, s.size() - off));
    if (!t.ok()) return t.status();
  }
  return Status::OK();
}

inline Status Replay(Client* client, const stream::ItemStream& s,
                     size_t batch = 1024,
                     ReplayChurn churn = ReplayChurn::kAuto) {
  const size_t batches = s.empty() ? 0 : (s.size() + batch - 1) / batch;
  const bool inject = churn == ReplayChurn::kAuto && batches >= 2 &&
                      TopologyChurnEnabled();
  const bool crash = churn == ReplayChurn::kAuto && batches >= 2 &&
                     CrashReplayEnabled();
  size_t index = 0;
  for (size_t off = 0; off < s.size(); off += batch, ++index) {
    if (inject && index == batches / 2) {
      if (Status cs = MaybeChurnTopology(client); !cs.ok()) return cs;
    }
    if (crash && index == (batches * 3) / 4) {
      if (Status cs = MaybeCrashShard(client); !cs.ok()) return cs;
    }
    auto t =
        client->SubmitItems(s.data() + off, std::min(batch, s.size() - off));
    if (!t.ok()) return t.status();
  }
  return Status::OK();
}

}  // namespace wbs::engine

#endif  // WBS_TESTS_ENGINE_TEST_UTIL_H_
