// Copyright (c) wbstream authors. Licensed under the MIT license.
//
// Bit-identity fuzz suite for the runtime-dispatched SIMD kernels
// (common/simd.h). The contract under test is exact: every table that
// AvailableKernels() reports runnable on this CPU must produce the same
// words as the scalar table on every input — moduli at both ends of the
// BarrettQ range (q = 2, q near 2^62, non-prime q), zero/odd/vector-width
// lengths, unaligned spans — and forcing a level through WBS_ENGINE_KERNEL
// must leave whole-engine answers unchanged across all six sketch
// families. Also home to the BarrettQ modulus-bound regression tests.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "common/modmath.h"
#include "common/simd.h"
#include "crypto/crhf.h"
#include "engine/topology.h"
#include "engine_test_util.h"
#include "stream/updates.h"

namespace wbs {
namespace {

// Moduli chosen to stress reduction edge cases: the smallest legal q, tiny
// primes, a power of two, composites (Barrett/Shoup make no primality
// assumption), a large prime, and the largest legal q (all-ones in 62 bits,
// maximally close to the 2q < 2^63 lane-compare bound).
const uint64_t kModuli[] = {
    2,
    3,
    97,
    uint64_t{1} << 20,                        // power of two, composite
    (uint64_t{1} << 20) + 2,                  // even composite
    1000000007,                               // large prime
    (uint64_t{1} << 61) + 1,                  // composite, > 2^61
    (uint64_t{1} << 62) - 2,                  // even, near the bound
    BarrettQ::kMaxModulus,                    // (1 << 62) - 1, the bound
};

// Lengths around every vector width in play (2/4/8 lanes) plus zero and
// primes, so scalar tails of every size get exercised.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 65, 100};

std::vector<uint64_t> RandomResidues(std::mt19937_64& rng, size_t n,
                                     uint64_t q) {
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = rng() % q;
  return v;
}

// ------------------------------------------------------- dispatch surface --

TEST(KernelDispatchTest, AvailableKernelsEndsWithScalar) {
  auto kernels = simd::AvailableKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.back()->name, "scalar");
  EXPECT_EQ(kernels.back()->lanes, 1);
  for (const auto* k : kernels) {
    ASSERT_NE(k->accumulate_mod, nullptr) << k->name;
    ASSERT_NE(k->subtract_mod, nullptr) << k->name;
    ASSERT_NE(k->sis_column_update, nullptr) << k->name;
    ASSERT_NE(k->ams_row_mix, nullptr) << k->name;
    ASSERT_NE(k->hash_items, nullptr) << k->name;
    ASSERT_NE(k->sha256_salted8, nullptr) << k->name;
  }
}

TEST(KernelDispatchTest, KernelByNameRoundTrips) {
  for (const auto* k : simd::AvailableKernels()) {
    EXPECT_EQ(simd::KernelByName(k->name), k);
  }
  EXPECT_EQ(simd::KernelByName("bogus"), nullptr);
  EXPECT_FALSE(simd::DetectedCpuFeatures().empty());
}

// RAII guard: forces WBS_ENGINE_KERNEL for a scope, restores the previous
// value (or unset state) and re-runs selection on exit so later tests in
// this binary see the environment they started with.
class ForcedKernel {
 public:
  explicit ForcedKernel(const char* name) {
    const char* prev = std::getenv("WBS_ENGINE_KERNEL");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (name == nullptr) {
      ::unsetenv("WBS_ENGINE_KERNEL");
    } else {
      ::setenv("WBS_ENGINE_KERNEL", name, 1);
    }
    simd::internal::ReselectKernels();
  }
  ~ForcedKernel() {
    if (had_prev_) {
      ::setenv("WBS_ENGINE_KERNEL", prev_.c_str(), 1);
    } else {
      ::unsetenv("WBS_ENGINE_KERNEL");
    }
    simd::internal::ReselectKernels();
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(KernelDispatchTest, EnvForcesEachAvailableLevel) {
  for (const auto* k : simd::AvailableKernels()) {
    ForcedKernel forced(k->name);
    EXPECT_STREQ(simd::Kernels().name, k->name);
  }
}

TEST(KernelDispatchTest, UnknownForcedLevelFallsBackToScalar) {
  ForcedKernel forced("not-an-isa");
  EXPECT_STREQ(simd::Kernels().name, "scalar");
}

TEST(KernelDispatchTest, UnsetEnvSelectsBestAvailable) {
  ForcedKernel forced(nullptr);
  EXPECT_STREQ(simd::Kernels().name, simd::AvailableKernels().front()->name);
}

// ------------------------------------------------- mod-q kernel bit fuzz --

TEST(KernelSimdTest, AccumulateAndSubtractMatchScalarEverywhere) {
  std::mt19937_64 rng(0x5eedu);
  const auto kernels = simd::AvailableKernels();
  const simd::KernelDispatch* scalar = kernels.back();
  for (uint64_t q : kModuli) {
    for (size_t n : kLengths) {
      // +1 so an offset-by-one view exists even at the longest length; the
      // offset view is 8-byte but not vector-width aligned.
      std::vector<uint64_t> acc0 = RandomResidues(rng, n + 1, q);
      std::vector<uint64_t> add = RandomResidues(rng, n + 1, q);
      for (size_t off : {size_t{0}, size_t{1}}) {
        std::vector<uint64_t> want(acc0.begin() + off, acc0.end());
        scalar->accumulate_mod(want.data(), add.data() + off, n, q);
        for (const auto* k : kernels) {
          std::vector<uint64_t> got(acc0.begin() + off, acc0.end());
          k->accumulate_mod(got.data(), add.data() + off, n, q);
          ASSERT_EQ(got, want) << k->name << " q=" << q << " n=" << n
                               << " off=" << off;
        }
        std::vector<uint64_t> want_sub(acc0.begin() + off, acc0.end());
        scalar->subtract_mod(want_sub.data(), add.data() + off, n, q);
        for (const auto* k : kernels) {
          std::vector<uint64_t> got(acc0.begin() + off, acc0.end());
          k->subtract_mod(got.data(), add.data() + off, n, q);
          ASSERT_EQ(got, want_sub) << k->name << " q=" << q << " n=" << n
                                   << " off=" << off;
        }
      }
    }
  }
}

TEST(KernelSimdTest, AccumulateModAgainstNaiveReference) {
  // Pin the scalar kernel itself against first-principles u128 arithmetic
  // so the fuzz above is anchored, not just self-consistent.
  std::mt19937_64 rng(7);
  for (uint64_t q : kModuli) {
    std::vector<uint64_t> acc = RandomResidues(rng, 33, q);
    std::vector<uint64_t> add = RandomResidues(rng, 33, q);
    std::vector<uint64_t> want(acc.size());
    for (size_t i = 0; i < acc.size(); ++i) {
      want[i] = uint64_t((u128(acc[i]) + add[i]) % q);
    }
    for (const auto* k : simd::AvailableKernels()) {
      std::vector<uint64_t> got = acc;
      k->accumulate_mod(got.data(), add.data(), got.size(), q);
      ASSERT_EQ(got, want) << k->name << " q=" << q;
    }
  }
}

TEST(KernelSimdTest, SisColumnUpdateMatchesBarrettMulAdd) {
  std::mt19937_64 rng(0xc01u);
  for (uint64_t q : kModuli) {
    const BarrettQ bq(q);
    for (size_t n : kLengths) {
      const std::vector<uint64_t> col = RandomResidues(rng, n, q);
      std::vector<uint64_t> shoup(n);
      for (size_t i = 0; i < n; ++i) {
        shoup[i] = uint64_t((u128(col[i]) << 64) / q);
      }
      const std::vector<uint64_t> v0 = RandomResidues(rng, n, q);
      // Sweep d over the interesting residues, not just random ones.
      for (uint64_t d : {uint64_t{0}, uint64_t{1}, q - 1, rng() % q}) {
        std::vector<uint64_t> want = v0;
        for (size_t i = 0; i < n; ++i) {
          want[i] = bq.AddMod(want[i], bq.MulMod(col[i], d));
        }
        for (const auto* k : simd::AvailableKernels()) {
          std::vector<uint64_t> got = v0;
          k->sis_column_update(got.data(), col.data(), shoup.data(), n, d, bq);
          ASSERT_EQ(got, want) << k->name << " q=" << q << " n=" << n
                               << " d=" << d;
        }
      }
    }
  }
}

TEST(KernelSimdTest, AmsRowMixMatchesScalar) {
  std::mt19937_64 rng(0xa35u);
  const auto kernels = simd::AvailableKernels();
  const simd::KernelDispatch* scalar = kernels.back();
  for (size_t rows : {size_t{1}, size_t{3}, size_t{8}}) {
    for (size_t count : kLengths) {
      std::vector<uint64_t> mix(count);
      std::vector<int64_t> deltas(count);
      for (size_t t = 0; t < count; ++t) {
        mix[t] = rng();
        deltas[t] = int64_t(rng() % 2001) - 1000;  // turnstile: both signs
      }
      std::vector<int64_t> base(rows);
      for (auto& c : base) c = int64_t(rng());
      std::vector<int64_t> want = base;
      scalar->ams_row_mix(want.data(), rows, mix.data(), deltas.data(), count);
      for (const auto* k : kernels) {
        std::vector<int64_t> got = base;
        k->ams_row_mix(got.data(), rows, mix.data(), deltas.data(), count);
        ASSERT_EQ(got, want) << k->name << " rows=" << rows
                             << " count=" << count;
      }
    }
  }
}

// --------------------------------------------------- hash/scatter kernels --

TEST(KernelSimdTest, HashItemsMatchesTopologySlotOf) {
  std::mt19937_64 rng(0x11a5u);
  for (size_t num_slots : {size_t{1}, size_t{7}, size_t{64}, size_t{96}}) {
    std::vector<uint64_t> items(65);
    for (auto& it : items) it = rng();
    items[0] = 0;  // degenerate item
    for (const auto* k : simd::AvailableKernels()) {
      for (size_t n : {size_t{0}, size_t{1}, size_t{8}, items.size()}) {
        std::vector<uint64_t> out(n);
        k->hash_items(items.data(), n, out.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(size_t(out[i] % num_slots),
                    engine::TopologyView::SlotOf(items[i], num_slots))
              << k->name << " i=" << i << " slots=" << num_slots;
        }
      }
    }
  }
}

TEST(KernelSimdTest, Sha256Salted8MatchesStreamingCrhf) {
  std::mt19937_64 rng(0x5a17u);
  for (uint64_t salt : {uint64_t{0}, uint64_t{0xdeadbeef}, rng()}) {
    // output_bits=64: HashU64 returns the untruncated first-8-bytes word,
    // exactly what the raw kernel emits.
    const crypto::Sha256Crhf crhf(salt, 64);
    uint64_t items[8];
    uint64_t out[8];
    for (int round = 0; round < 16; ++round) {
      for (auto& it : items) it = rng();
      if (round == 0) items[0] = 0;
      for (const auto* k : simd::AvailableKernels()) {
        k->sha256_salted8(salt, items, out);
        for (int i = 0; i < 8; ++i) {
          ASSERT_EQ(out[i], crhf.HashU64(items[i]))
              << k->name << " salt=" << salt << " lane=" << i;
        }
      }
    }
  }
}

TEST(KernelSimdTest, HashU64x8HonorsTruncation) {
  const crypto::Sha256Crhf crhf(42, 20);  // truncated universe
  uint64_t items[8];
  uint64_t out[8];
  for (int i = 0; i < 8; ++i) items[i] = uint64_t(i) * 0x9e3779b97f4a7c15ULL;
  crhf.HashU64x8(items, out);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i], crhf.HashU64(items[i]));
    EXPECT_LT(out[i], uint64_t{1} << 20);
  }
}

// -------------------------------------------- engine-level forced dispatch --

// Deterministic insertion-only stream legal for all six families.
stream::TurnstileStream SkewedStream(uint64_t universe, size_t n) {
  std::mt19937_64 rng(0xfeedu);
  stream::TurnstileStream s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Zipf-ish: frequent small items plus a uniform tail.
    const uint64_t item =
        (i % 3 == 0) ? (rng() % 8) : (rng() % universe);
    s.push_back({item, int64_t(1 + rng() % 3)});
  }
  return s;
}

std::string Fingerprint(const engine::SketchSummary& s) {
  std::string fp = s.sketch + "|updates=" + std::to_string(s.updates);
  if (s.has_scalar) {
    // Bit-exact double comparison: same kernel words => same estimate bits.
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(s.scalar));
    std::memcpy(&bits, &s.scalar, sizeof(bits));
    fp += "|scalar=" + std::to_string(bits);
  }
  for (const auto& it : s.items) {
    uint64_t bits;
    std::memcpy(&bits, &it.estimate, sizeof(bits));
    fp += "|" + std::to_string(it.item) + ":" + std::to_string(bits);
  }
  return fp;
}

TEST(KernelSimdEngineTest, AllSixFamiliesBitIdenticalUnderForcedDispatch) {
  const std::vector<std::string> families = {"misra_gries", "ams_f2",
                                             "sis_l0",      "rank_decision",
                                             "robust_hh",   "crhf_hh"};
  engine::SketchConfig cfg;
  cfg.universe = uint64_t{1} << 12;
  cfg.seed = 99;
  const stream::TurnstileStream stream = SkewedStream(cfg.universe, 4096);

  std::vector<std::string> reference;  // fingerprints under forced scalar
  for (const auto* k : simd::AvailableKernels()) {
    ForcedKernel forced(k->name);
    // 2 shards exercises the SIMD scatter path; inline appliers keep the
    // run single-threaded and deterministic.
    auto client = engine::MakeClient(families, cfg, 2, 0);
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(engine::Replay(client.get(), stream, 512,
                               engine::ReplayChurn::kDisabled)
                    .ok());
    std::vector<std::string> fps;
    for (const auto& f : families) {
      auto handle = client->Handle(f);
      ASSERT_TRUE(handle.ok()) << f;
      auto summary = client->RawSummary(handle.value());
      ASSERT_TRUE(summary.ok()) << f;
      fps.push_back(Fingerprint(summary.value()));
    }
    if (reference.empty()) {
      reference = std::move(fps);
    } else {
      for (size_t i = 0; i < families.size(); ++i) {
        EXPECT_EQ(fps[i], reference[i])
            << families[i] << " diverges under kernel " << k->name;
      }
    }
  }
}

// ----------------------------------------------- BarrettQ modulus bounds --

TEST(BarrettBoundsTest, MakeAcceptsFullLegalRange) {
  ASSERT_TRUE(BarrettQ::Make(2).ok());
  ASSERT_TRUE(BarrettQ::Make(BarrettQ::kMaxModulus).ok());
}

TEST(BarrettBoundsTest, MakeRejectsOutOfRange) {
  for (uint64_t bad : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 62,
                       (uint64_t{1} << 62) + 12345, ~uint64_t{0}}) {
    auto r = BarrettQ::Make(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument) << bad;
  }
}

TEST(BarrettBoundsTest, BoundaryModulusReducesExactly) {
  // At the very top of the legal range every intermediate in MulMod is as
  // large as it can get; pin the result against u128 arithmetic.
  const uint64_t q = BarrettQ::kMaxModulus;
  auto bq = BarrettQ::Make(q);
  ASSERT_TRUE(bq.ok());
  std::mt19937_64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng() % q;
    const uint64_t b = rng() % q;
    ASSERT_EQ(bq.value().MulMod(a, b), uint64_t(u128(a) * b % q));
    ASSERT_EQ(bq.value().AddMod(a, b), uint64_t((u128(a) + b) % q));
  }
  // q - 1 squared is the single largest product.
  ASSERT_EQ(bq.value().MulMod(q - 1, q - 1),
            uint64_t(u128(q - 1) * (q - 1) % q));
}

}  // namespace
}  // namespace wbs
